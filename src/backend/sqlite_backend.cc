/// \file
/// The embedded-SQLite execution backend (see backend/backend.h for the
/// contract). Compiled only under CQA_WITH_SQLITE — the whole
/// translation unit is empty otherwise, so default builds need no
/// SQLite anywhere.
///
/// Shape: ONE main connection, serialized by a mutex, owns the mirror —
/// per-relation tables of INTEGER SymbolId columns rebuilt on Load and
/// kept current by a SQL transaction per committed delta. Plan SQL
/// (fo/sql_lower.h) and its prepared statements are cached per plan
/// canonical key. Snapshot answer cursors run on their OWN read-only
/// connection holding a read transaction, so WAL mode gives them a
/// stable snapshot while deltas keep committing on the main connection
/// (`:memory:` databases have no second connection to the same data, so
/// they decline cursors). Any unexpected SQLite error *degrades* the
/// backend — it starts declining every pushdown and the session serves
/// from its authoritative in-memory state.

#if defined(CQA_WITH_SQLITE)

#include <sqlite3.h>

#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "backend/backend.h"
#include "fo/sql_lower.h"

namespace cqa {

namespace {

/// Rows between deadline checks on the per-row decision loop.
constexpr int kDecideDeadlineStride = 256;
/// SQLite VM instructions between progress-handler deadline polls.
constexpr int kProgressOpStride = 4096;

Status SqliteError(sqlite3* conn, const std::string& what) {
  return Status::Internal("sqlite " + what + ": " +
                          (conn != nullptr ? sqlite3_errmsg(conn) : "?"));
}

int DeadlineProgress(void* arg) {
  return static_cast<const Deadline*>(arg)->Expired() ? 1 : 0;
}

/// Finalize-and-null; safe on null.
void Finalize(sqlite3_stmt** stmt) {
  if (*stmt != nullptr) {
    sqlite3_finalize(*stmt);
    *stmt = nullptr;
  }
}

class SqliteCursor : public Backend::AnswerCursor {
 public:
  SqliteCursor(sqlite3* conn, sqlite3_stmt* page_stmt, size_t total,
               size_t width)
      : conn_(conn), page_stmt_(page_stmt), total_(total), width_(width) {}

  ~SqliteCursor() override {
    Finalize(&page_stmt_);
    if (conn_ != nullptr) {
      sqlite3_exec(conn_, "COMMIT", nullptr, nullptr, nullptr);
      sqlite3_close(conn_);
    }
  }

  size_t total_rows() const override { return total_; }

  Result<Backend::RowSet> Fetch(size_t offset, size_t limit) override {
    std::lock_guard<std::mutex> lock(mu_);
    sqlite3_bind_int64(page_stmt_, 1, static_cast<sqlite3_int64>(limit));
    sqlite3_bind_int64(page_stmt_, 2, static_cast<sqlite3_int64>(offset));
    Backend::RowSet rows;
    int rc;
    while ((rc = sqlite3_step(page_stmt_)) == SQLITE_ROW) {
      std::vector<SymbolId> row(width_);
      for (size_t j = 0; j < width_; ++j) {
        row[j] = static_cast<SymbolId>(
            sqlite3_column_int64(page_stmt_, static_cast<int>(j)));
      }
      rows.push_back(std::move(row));
    }
    sqlite3_reset(page_stmt_);
    sqlite3_clear_bindings(page_stmt_);
    if (rc != SQLITE_DONE) return SqliteError(conn_, "cursor page fetch");
    return rows;
  }

 private:
  std::mutex mu_;
  sqlite3* conn_ = nullptr;
  sqlite3_stmt* page_stmt_ = nullptr;
  size_t total_ = 0;
  size_t width_ = 0;
};

class SqliteBackend : public Backend {
 public:
  SqliteBackend(std::string path, size_t budget)
      : path_(std::move(path)),
        file_backed_(!path_.empty()),
        budget_(budget) {}

  ~SqliteBackend() override {
    std::lock_guard<std::mutex> lock(mu_);
    CloseLocked();
  }

  Status Open() {
    std::lock_guard<std::mutex> lock(mu_);
    const char* target = file_backed_ ? path_.c_str() : ":memory:";
    int rc = sqlite3_open_v2(
        target, &conn_,
        SQLITE_OPEN_READWRITE | SQLITE_OPEN_CREATE | SQLITE_OPEN_NOMUTEX,
        nullptr);
    if (rc != SQLITE_OK) {
      Status st = SqliteError(conn_, "open " + std::string(target));
      CloseLocked();
      return st;
    }
    if (file_backed_) {
      // WAL is what lets a cursor's read transaction snapshot coexist
      // with delta commits on this connection.
      CQA_RETURN_NOT_OK(ExecLocked("PRAGMA journal_mode=WAL"));
      CQA_RETURN_NOT_OK(ExecLocked("PRAGMA synchronous=NORMAL"));
    }
    return Status::OK();
  }

  BackendOptions::Kind kind() const override {
    return BackendOptions::Kind::kSqlite;
  }

  Status Load(const Database& db, uint64_t epoch) override {
    (void)epoch;
    std::lock_guard<std::mutex> lock(mu_);
    Status st = LoadLocked(db);
    if (!st.ok()) {
      DegradeLocked();
      sqlite3_exec(conn_, "ROLLBACK", nullptr, nullptr, nullptr);
    }
    return st;
  }

  Status ApplyMutations(const std::vector<Mutation>& mutations,
                        const Database& post, uint64_t epoch) override {
    (void)epoch;
    std::lock_guard<std::mutex> lock(mu_);
    if (degraded_) return Status::FailedPrecondition("sqlite backend degraded");
    Status st = ApplyMutationsLocked(mutations, post);
    if (!st.ok()) {
      sqlite3_exec(conn_, "ROLLBACK", nullptr, nullptr, nullptr);
      DegradeLocked();
    }
    return st;
  }

  bool SupportsNatively(const QueryPlan& plan) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (degraded_) return false;
    return PlanSqlLocked(plan)->native;
  }

  Status AdmitFallback(const QueryPlan& plan, size_t db_facts) override {
    (void)plan;
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_ > 0 && db_facts > budget_) {
      ++stats_.fallback_refused;
      return Status::FailedPrecondition(
          "plan is not SQL-servable and the tenant exceeds its resident "
          "budget (" +
          std::to_string(db_facts) + " facts > " + std::to_string(budget_) +
          ")");
    }
    ++stats_.fallback_admitted;
    return Status::OK();
  }

  bool PartitionsRows(const QueryPlan& plan) override {
    // Native row decisions serialize on the one main connection —
    // hand the whole batch over as a single span instead of queueing
    // pool workers on the connection mutex.
    return !SupportsNatively(plan);
  }

  Status DecideRowSpan(EvalContext& ctx, const QueryPlan& plan,
                       const std::vector<std::vector<SymbolId>>& rows,
                       size_t begin, size_t end, std::vector<char>* out,
                       const Deadline& deadline) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      PlanSql* sql = PlanSqlLocked(plan);
      if (!degraded_ && sql->native && sql->row_stmt != nullptr) {
        Status st =
            DecideSpanLocked(sql, rows, begin, end, out, deadline);
        if (st.ok() || st.code() == StatusCode::kDeadlineExceeded) {
          if (st.ok()) {
            ++stats_.pushed_row_spans;
            stats_.pushed_rows += end - begin;
          }
          return st;
        }
        // Execution error: degrade and fall through to the in-memory
        // span below (idempotent — it overwrites the whole span).
        DegradeLocked();
      }
    }
    return plan.IsCertainRowSpan(ctx, rows, begin, end, out, deadline);
  }

  Result<std::optional<bool>> SolveCertain(const QueryPlan& plan) override {
    std::lock_guard<std::mutex> lock(mu_);
    PlanSql* sql = PlanSqlLocked(plan);
    if (degraded_ || !sql->native || sql->bool_solve_stmt == nullptr) {
      return std::optional<bool>();  // decline
    }
    Result<bool> value = StepBoolLocked(sql->bool_solve_stmt);
    if (!value.ok()) {
      DegradeLocked();
      return std::optional<bool>();  // decline; in-memory solve answers
    }
    ++stats_.pushed_solves;
    return std::optional<bool>(*value);
  }

  Result<std::optional<RowSet>> CertainAnswerSet(
      const QueryPlan& plan, const Deadline& deadline) override {
    std::lock_guard<std::mutex> lock(mu_);
    PlanSql* sql = PlanSqlLocked(plan);
    if (degraded_ || !sql->native) return std::optional<RowSet>();
    if (sql->width == 0) {
      // Boolean serving: possible AND certain, one row, one column.
      Result<bool> value = StepBoolLocked(sql->bool_certain_stmt);
      if (!value.ok()) {
        DegradeLocked();
        return std::optional<RowSet>();
      }
      RowSet rows;
      if (*value) rows.push_back({});
      ++stats_.pushed_answer_sets;
      return std::optional<RowSet>(std::move(rows));
    }
    sqlite3_progress_handler(conn_, kProgressOpStride, DeadlineProgress,
                             const_cast<Deadline*>(&deadline));
    RowSet rows;
    int rc;
    while ((rc = sqlite3_step(sql->answers_stmt)) == SQLITE_ROW) {
      std::vector<SymbolId> row(sql->width);
      for (size_t j = 0; j < sql->width; ++j) {
        row[j] = static_cast<SymbolId>(
            sqlite3_column_int64(sql->answers_stmt, static_cast<int>(j)));
      }
      rows.push_back(std::move(row));
    }
    sqlite3_reset(sql->answers_stmt);
    sqlite3_progress_handler(conn_, 0, nullptr, nullptr);
    if (rc != SQLITE_DONE) {
      if (rc == SQLITE_INTERRUPT || deadline.Expired()) {
        return Status::DeadlineExceeded(
            "deadline expired in SQL answer enumeration");
      }
      DegradeLocked();
      return std::optional<RowSet>();  // decline; session recomputes
    }
    ++stats_.pushed_answer_sets;
    return std::optional<RowSet>(std::move(rows));
  }

  Result<std::shared_ptr<AnswerCursor>> OpenAnswerCursor(
      const QueryPlan& plan) override {
    std::lock_guard<std::mutex> lock(mu_);
    PlanSql* sql = PlanSqlLocked(plan);
    if (degraded_ || !sql->native || sql->width == 0 || !file_backed_) {
      return std::shared_ptr<AnswerCursor>();  // decline
    }
    sqlite3* conn = nullptr;
    if (sqlite3_open_v2(path_.c_str(), &conn, SQLITE_OPEN_READONLY, nullptr) !=
        SQLITE_OK) {
      sqlite3_close(conn);
      return std::shared_ptr<AnswerCursor>();
    }
    // BEGIN + the COUNT materialize the read snapshot: every later page
    // fetch on this connection sees exactly the rows counted here, no
    // matter how many deltas commit behind it.
    sqlite3_stmt* count_stmt = nullptr;
    sqlite3_stmt* page_stmt = nullptr;
    size_t total = 0;
    bool ok = sqlite3_exec(conn, "BEGIN", nullptr, nullptr, nullptr) ==
                  SQLITE_OK &&
              sqlite3_prepare_v2(conn, sql->count_sql.c_str(), -1, &count_stmt,
                                 nullptr) == SQLITE_OK &&
              sqlite3_step(count_stmt) == SQLITE_ROW;
    if (ok) {
      total = static_cast<size_t>(sqlite3_column_int64(count_stmt, 0));
      ok = sqlite3_prepare_v2(conn, sql->page_sql.c_str(), -1, &page_stmt,
                              nullptr) == SQLITE_OK;
    }
    Finalize(&count_stmt);
    if (!ok) {
      Finalize(&page_stmt);
      sqlite3_close(conn);
      return std::shared_ptr<AnswerCursor>();  // decline
    }
    ++stats_.cursors_opened;
    return std::shared_ptr<AnswerCursor>(
        std::make_shared<SqliteCursor>(conn, page_stmt, total, sql->width));
  }

  Stats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    Stats out = stats_;
    out.degraded = degraded_;
    return out;
  }

  void TearDown() override {
    std::lock_guard<std::mutex> lock(mu_);
    CloseLocked();
    if (file_backed_) {
      std::remove(path_.c_str());
      std::remove((path_ + "-wal").c_str());
      std::remove((path_ + "-shm").c_str());
    }
  }

 private:
  /// Per-plan compiled SQL, keyed by the plan's canonical cache key.
  struct PlanSql {
    bool native = false;
    size_t width = 0;                       // parameter count
    sqlite3_stmt* row_stmt = nullptr;       // RowDecisionSql
    sqlite3_stmt* answers_stmt = nullptr;   // CertainAnswersSql
    sqlite3_stmt* bool_certain_stmt = nullptr;  // BooleanCertainSql
    sqlite3_stmt* bool_solve_stmt = nullptr;    // BooleanSolveSql
    std::string count_sql;  // prepared per cursor connection
    std::string page_sql;
  };

  void DegradeLocked() {
    degraded_ = true;
    stats_.degraded = true;
  }

  Status ExecLocked(const std::string& sql) {
    char* err = nullptr;
    if (sqlite3_exec(conn_, sql.c_str(), nullptr, nullptr, &err) !=
        SQLITE_OK) {
      std::string msg = err != nullptr ? err : "?";
      sqlite3_free(err);
      return Status::Internal("sqlite exec failed (" + sql + "): " + msg);
    }
    return Status::OK();
  }

  Result<sqlite3_stmt*> PrepareLocked(const std::string& sql) {
    sqlite3_stmt* stmt = nullptr;
    if (sqlite3_prepare_v2(conn_, sql.c_str(), -1, &stmt, nullptr) !=
        SQLITE_OK) {
      return SqliteError(conn_, "prepare (" + sql + ")");
    }
    ++stats_.statements_prepared;
    return stmt;
  }

  /// Drops every cached statement (table drops invalidate them all).
  void ClearStatementsLocked() {
    for (auto& [rel, stmt] : insert_stmts_) Finalize(&stmt);
    for (auto& [rel, stmt] : delete_stmts_) Finalize(&stmt);
    insert_stmts_.clear();
    delete_stmts_.clear();
    for (auto& [key, sql] : plans_) {
      Finalize(&sql.row_stmt);
      Finalize(&sql.answers_stmt);
      Finalize(&sql.bool_certain_stmt);
      Finalize(&sql.bool_solve_stmt);
    }
    plans_.clear();
  }

  void CloseLocked() {
    ClearStatementsLocked();
    if (conn_ != nullptr) {
      sqlite3_close(conn_);
      conn_ = nullptr;
    }
  }

  Status CreateTableLocked(SymbolId relation, int arity) {
    if (arity <= 0) {
      return Status::Unsupported("zero-arity relation has no SQL table form");
    }
    std::string cols;
    std::string pk;
    for (int i = 0; i < arity; ++i) {
      if (i > 0) {
        cols += ", ";
        pk += ", ";
      }
      cols += SqlColumnName(i) + " INTEGER NOT NULL";
      pk += SqlColumnName(i);
    }
    CQA_RETURN_NOT_OK(ExecLocked("CREATE TABLE IF NOT EXISTS " +
                                 SqlTableName(relation) + " (" + cols +
                                 ", PRIMARY KEY (" + pk +
                                 ")) WITHOUT ROWID"));
    tables_.insert(relation);
    return Status::OK();
  }

  Result<sqlite3_stmt*> InsertStmtLocked(SymbolId relation, int arity) {
    auto it = insert_stmts_.find(relation);
    if (it != insert_stmts_.end()) return it->second;
    std::string marks;
    for (int i = 0; i < arity; ++i) {
      if (i > 0) marks += ", ";
      marks += "?" + std::to_string(i + 1);
    }
    Result<sqlite3_stmt*> stmt = PrepareLocked(
        "INSERT OR IGNORE INTO " + SqlTableName(relation) + " VALUES (" +
        marks + ")");
    if (stmt.ok()) insert_stmts_.emplace(relation, *stmt);
    return stmt;
  }

  Result<sqlite3_stmt*> DeleteStmtLocked(SymbolId relation, int arity) {
    auto it = delete_stmts_.find(relation);
    if (it != delete_stmts_.end()) return it->second;
    std::string conds;
    for (int i = 0; i < arity; ++i) {
      if (i > 0) conds += " AND ";
      conds += SqlColumnName(i) + " = ?" + std::to_string(i + 1);
    }
    Result<sqlite3_stmt*> stmt = PrepareLocked(
        "DELETE FROM " + SqlTableName(relation) + " WHERE " + conds);
    if (stmt.ok()) delete_stmts_.emplace(relation, *stmt);
    return stmt;
  }

  Status BindStepLocked(sqlite3_stmt* stmt, const Fact& fact) {
    for (int i = 0; i < fact.arity(); ++i) {
      sqlite3_bind_int64(stmt, i + 1,
                         static_cast<sqlite3_int64>(fact.values()[i]));
    }
    int rc = sqlite3_step(stmt);
    sqlite3_reset(stmt);
    sqlite3_clear_bindings(stmt);
    if (rc != SQLITE_DONE) return SqliteError(conn_, "mutation step");
    return Status::OK();
  }

  Status LoadLocked(const Database& db) {
    if (conn_ == nullptr) return Status::Internal("sqlite backend not open");
    ClearStatementsLocked();
    // Rebuild from scratch: drop every mirrored table.
    for (SymbolId relation : tables_) {
      CQA_RETURN_NOT_OK(
          ExecLocked("DROP TABLE IF EXISTS " + SqlTableName(relation)));
    }
    tables_.clear();
    for (SymbolId relation : db.schema().relations()) {
      auto sig = db.schema().Find(relation);
      if (!sig.has_value()) continue;
      CQA_RETURN_NOT_OK(CreateTableLocked(relation, sig->arity));
    }
    CQA_RETURN_NOT_OK(ExecLocked("BEGIN IMMEDIATE"));
    for (const Fact& fact : db.facts()) {
      if (tables_.count(fact.relation()) == 0) {
        CQA_RETURN_NOT_OK(CreateTableLocked(fact.relation(), fact.arity()));
      }
      Result<sqlite3_stmt*> stmt =
          InsertStmtLocked(fact.relation(), fact.arity());
      if (!stmt.ok()) return stmt.status();
      CQA_RETURN_NOT_OK(BindStepLocked(*stmt, fact));
    }
    CQA_RETURN_NOT_OK(ExecLocked("COMMIT"));
    ++stats_.loads;
    return Status::OK();
  }

  Status ApplyMutationsLocked(const std::vector<Mutation>& mutations,
                              const Database& post) {
    if (conn_ == nullptr) return Status::Internal("sqlite backend not open");
    CQA_RETURN_NOT_OK(ExecLocked("BEGIN IMMEDIATE"));
    for (const Mutation& m : mutations) {
      if (tables_.count(m.fact.relation()) == 0) {
        // A delta introduced a new relation; its signature is now in
        // the post-delta schema.
        auto sig = post.schema().Find(m.fact.relation());
        int arity = sig.has_value() ? sig->arity : m.fact.arity();
        CQA_RETURN_NOT_OK(CreateTableLocked(m.fact.relation(), arity));
      }
      Result<sqlite3_stmt*> stmt =
          m.add ? InsertStmtLocked(m.fact.relation(), m.fact.arity())
                : DeleteStmtLocked(m.fact.relation(), m.fact.arity());
      if (!stmt.ok()) return stmt.status();
      CQA_RETURN_NOT_OK(BindStepLocked(*stmt, m.fact));
    }
    CQA_RETURN_NOT_OK(ExecLocked("COMMIT"));
    stats_.mutations_mirrored += mutations.size();
    ++stats_.transactions_committed;
    return Status::OK();
  }

  /// Compiles (or fetches) the plan's SQL under mu_. Never fails: a
  /// plan whose program is missing or does not lower simply compiles to
  /// native == false and is served in memory.
  PlanSql* PlanSqlLocked(const QueryPlan& plan) {
    auto it = plans_.find(plan.cache_key());
    if (it != plans_.end()) {
      ++stats_.statement_cache_hits;
      return &it->second;
    }
    PlanSql sql;
    sql.width = plan.canonical().params.size();
    const std::shared_ptr<const FoProgram>& program = plan.fo_program();
    if (conn_ != nullptr && program != nullptr && !program->needs_adom()) {
      Status st = CompilePlanLocked(plan, *program, &sql);
      if (!st.ok()) {
        // Not SQL-servable (or a prepare failed): serve in memory.
        Finalize(&sql.row_stmt);
        Finalize(&sql.answers_stmt);
        Finalize(&sql.bool_certain_stmt);
        Finalize(&sql.bool_solve_stmt);
        sql.native = false;
      }
    }
    return &plans_.emplace(plan.cache_key(), std::move(sql)).first->second;
  }

  Status CompilePlanLocked(const QueryPlan& plan, const FoProgram& program,
                           PlanSql* sql) {
    // Guard relations referenced by the program might not exist yet as
    // tables (a query over a relation the database has never seen);
    // create them so the statements prepare.
    for (const FoProgram::Op& op : program.ops()) {
      if (op.relation != 0 && tables_.count(op.relation) == 0 &&
          !op.slots.empty()) {
        CQA_RETURN_NOT_OK(
            CreateTableLocked(op.relation, static_cast<int>(op.slots.size())));
      }
    }
    for (const Atom& atom : plan.canonical().query.atoms()) {
      if (tables_.count(atom.relation()) == 0) {
        CQA_RETURN_NOT_OK(CreateTableLocked(atom.relation(), atom.arity()));
      }
    }
    Result<std::vector<std::string>> index_ddl = ProgramIndexDdl(program);
    if (!index_ddl.ok()) return index_ddl.status();
    for (const std::string& ddl : *index_ddl) CQA_RETURN_NOT_OK(ExecLocked(ddl));

    if (sql->width == 0) {
      Result<std::string> certain =
          BooleanCertainSql(plan.canonical(), program);
      if (!certain.ok()) return certain.status();
      Result<std::string> solve = BooleanSolveSql(program);
      if (!solve.ok()) return solve.status();
      Result<sqlite3_stmt*> certain_stmt = PrepareLocked(*certain);
      if (!certain_stmt.ok()) return certain_stmt.status();
      sql->bool_certain_stmt = *certain_stmt;
      Result<sqlite3_stmt*> solve_stmt = PrepareLocked(*solve);
      if (!solve_stmt.ok()) return solve_stmt.status();
      sql->bool_solve_stmt = *solve_stmt;
    } else {
      Result<std::string> row = RowDecisionSql(program);
      if (!row.ok()) return row.status();
      Result<std::string> answers = CertainAnswersSql(plan.canonical(), program);
      if (!answers.ok()) return answers.status();
      Result<std::string> page =
          CertainAnswersPageSql(plan.canonical(), program);
      if (!page.ok()) return page.status();
      Result<std::string> count =
          CertainAnswersCountSql(plan.canonical(), program);
      if (!count.ok()) return count.status();
      Result<sqlite3_stmt*> row_stmt = PrepareLocked(*row);
      if (!row_stmt.ok()) return row_stmt.status();
      sql->row_stmt = *row_stmt;
      Result<sqlite3_stmt*> answers_stmt = PrepareLocked(*answers);
      if (!answers_stmt.ok()) return answers_stmt.status();
      sql->answers_stmt = *answers_stmt;
      sql->page_sql = *page;
      sql->count_sql = *count;
    }
    sql->native = true;
    return Status::OK();
  }

  Result<bool> StepBoolLocked(sqlite3_stmt* stmt) {
    int rc = sqlite3_step(stmt);
    if (rc != SQLITE_ROW) {
      sqlite3_reset(stmt);
      return SqliteError(conn_, "boolean statement step");
    }
    bool value = sqlite3_column_int(stmt, 0) != 0;
    sqlite3_reset(stmt);
    return value;
  }

  Status DecideSpanLocked(PlanSql* sql,
                          const std::vector<std::vector<SymbolId>>& rows,
                          size_t begin, size_t end, std::vector<char>* out,
                          const Deadline& deadline) {
    sqlite3_stmt* stmt = sql->row_stmt;
    for (size_t i = begin; i < end; ++i) {
      if ((i - begin) % kDecideDeadlineStride == 0 && deadline.Expired()) {
        return Status::DeadlineExceeded("deadline expired deciding rows");
      }
      const std::vector<SymbolId>& row = rows[i];
      for (size_t j = 0; j < row.size(); ++j) {
        sqlite3_bind_int64(stmt, static_cast<int>(j) + 1,
                           static_cast<sqlite3_int64>(row[j]));
      }
      int rc = sqlite3_step(stmt);
      char verdict =
          rc == SQLITE_ROW && sqlite3_column_int(stmt, 0) != 0 ? 1 : 0;
      sqlite3_reset(stmt);
      sqlite3_clear_bindings(stmt);
      if (rc != SQLITE_ROW) return SqliteError(conn_, "row decision step");
      (*out)[i] = verdict;
    }
    return Status::OK();
  }

  const std::string path_;
  const bool file_backed_;
  const size_t budget_;

  mutable std::mutex mu_;
  sqlite3* conn_ = nullptr;
  bool degraded_ = false;
  std::unordered_set<SymbolId> tables_;
  std::unordered_map<SymbolId, sqlite3_stmt*> insert_stmts_;
  std::unordered_map<SymbolId, sqlite3_stmt*> delete_stmts_;
  std::unordered_map<std::string, PlanSql> plans_;
  Stats stats_;
};

}  // namespace

bool SqliteBackendAvailable() { return true; }

Result<std::unique_ptr<Backend>> MakeSqliteBackend(
    const std::string& path, size_t resident_budget_facts) {
  auto backend = std::make_unique<SqliteBackend>(path, resident_budget_facts);
  CQA_RETURN_NOT_OK(backend->Open());
  return std::unique_ptr<Backend>(std::move(backend));
}

}  // namespace cqa

#endif  // CQA_WITH_SQLITE
