#include "net/codec.h"

#include <utility>

#include "util/interner.h"

namespace cqa {
namespace net {

namespace {

/// Highest StatusCode value protocol v1 knows; decoded codes above it
/// collapse to kInternal (forward compatibility, §3).
constexpr uint8_t kMaxKnownStatusCode =
    static_cast<uint8_t>(StatusCode::kDeadlineExceeded);

void EncodeStringList(Writer* w, const std::vector<std::string>& names) {
  w->Varint(names.size());
  for (const std::string& name : names) w->Str(name);
}

bool DecodeStringList(Reader* r, std::vector<std::string>* out) {
  uint64_t n = r->Varint();
  for (uint64_t i = 0; i < n && !r->failed(); ++i) {
    out->push_back(std::string(r->Str()));
  }
  return !r->failed();
}

void EncodeOptionalQuery(Writer* w, const std::optional<Query>& q) {
  w->Bool(q.has_value());
  if (q.has_value()) EncodeQuery(w, *q);
}

Result<std::optional<Query>> DecodeOptionalQuery(Reader* r) {
  if (!r->Bool()) return std::optional<Query>();
  Result<Query> q = DecodeQuery(r);
  if (!q.ok()) return q.status();
  return std::optional<Query>(*std::move(q));
}

/// Shared tail check: the payload must be fully consumed.
template <typename T>
Result<T> Finish(Reader* r, T value, const char* what) {
  if (!r->done()) return MalformedPayload(what);
  return value;
}

}  // namespace

// --------------------------------------------------------------- status

void EncodeStatus(Writer* w, const Status& status) {
  w->U8(static_cast<uint8_t>(status.code()));
  w->Str(status.message());
}

Status DecodeStatus(Reader* r) {
  uint8_t code = r->U8();
  std::string message(r->Str());
  if (r->failed()) return MalformedPayload("status");
  if (code == 0) return Status::OK();
  if (code > kMaxKnownStatusCode) {
    return Status::Internal("unknown remote status code " +
                            std::to_string(code) + ": " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

// ------------------------------------------------------ data structures

void EncodeQuery(Writer* w, const Query& q) {
  w->Varint(q.atoms().size());
  for (const Atom& atom : q.atoms()) {
    w->Str(SymbolName(atom.relation()));
    w->Varint(static_cast<uint64_t>(atom.key_arity()));
    w->Varint(static_cast<uint64_t>(atom.arity()));
    for (const Term& t : atom.terms()) {
      w->U8(t.is_var() ? 0 : 1);
      w->Str(SymbolName(t.id()));
    }
  }
}

Result<Query> DecodeQuery(Reader* r) {
  uint64_t natoms = r->Varint();
  std::vector<Atom> atoms;
  for (uint64_t i = 0; i < natoms && !r->failed(); ++i) {
    std::string_view relation = r->Str();
    uint64_t key_arity = r->Varint();
    uint64_t arity = r->Varint();
    if (r->failed() || arity > kMaxArity || key_arity > arity) {
      return MalformedPayload("atom arity");
    }
    std::vector<Term> terms;
    terms.reserve(arity);
    for (uint64_t j = 0; j < arity; ++j) {
      uint8_t tag = r->U8();
      std::string_view name = r->Str();
      if (r->failed() || tag > 1) return MalformedPayload("term");
      terms.push_back(tag == 0 ? Term::Var(name) : Term::Const(name));
    }
    atoms.emplace_back(InternSymbol(relation), std::move(terms),
                       static_cast<int>(key_arity));
  }
  if (r->failed()) return MalformedPayload("query");
  return Query(std::move(atoms));
}

void EncodeFact(Writer* w, const Fact& fact) {
  w->Str(SymbolName(fact.relation()));
  w->Varint(static_cast<uint64_t>(fact.key_arity()));
  w->Varint(static_cast<uint64_t>(fact.arity()));
  for (SymbolId v : fact.values()) w->Str(SymbolName(v));
}

Result<Fact> DecodeFact(Reader* r) {
  std::string_view relation = r->Str();
  uint64_t key_arity = r->Varint();
  uint64_t arity = r->Varint();
  if (r->failed() || arity > kMaxArity || key_arity > arity) {
    return MalformedPayload("fact arity");
  }
  std::vector<SymbolId> values;
  values.reserve(arity);
  for (uint64_t i = 0; i < arity; ++i) {
    values.push_back(InternSymbol(r->Str()));
  }
  if (r->failed()) return MalformedPayload("fact");
  return Fact(InternSymbol(relation), std::move(values),
              static_cast<int>(key_arity));
}

void EncodeDelta(Writer* w, const Delta& delta) {
  w->Varint(delta.ops().size());
  for (const Delta::Op& op : delta.ops()) {
    switch (op.kind) {
      case Delta::Op::Kind::kInsert:
        w->U8(1);
        EncodeFact(w, op.fact);
        break;
      case Delta::Op::Kind::kRemove:
        w->U8(2);
        EncodeFact(w, op.fact);
        break;
      case Delta::Op::Kind::kReplaceBlock:
        w->U8(3);
        w->Str(SymbolName(op.relation));
        w->Varint(op.key.size());
        for (SymbolId v : op.key) w->Str(SymbolName(v));
        w->Varint(op.block_facts.size());
        for (const Fact& f : op.block_facts) EncodeFact(w, f);
        break;
    }
  }
}

Result<Delta> DecodeDelta(Reader* r) {
  uint64_t nops = r->Varint();
  Delta delta;
  for (uint64_t i = 0; i < nops && !r->failed(); ++i) {
    uint8_t tag = r->U8();
    if (tag == 1 || tag == 2) {
      Result<Fact> fact = DecodeFact(r);
      if (!fact.ok()) return fact.status();
      if (tag == 1) {
        delta.Insert(*std::move(fact));
      } else {
        delta.Remove(*std::move(fact));
      }
    } else if (tag == 3) {
      SymbolId relation = InternSymbol(r->Str());
      uint64_t key_len = r->Varint();
      if (r->failed() || key_len > kMaxArity) {
        return MalformedPayload("replace_block key");
      }
      std::vector<SymbolId> key;
      key.reserve(key_len);
      for (uint64_t j = 0; j < key_len; ++j) {
        key.push_back(InternSymbol(r->Str()));
      }
      uint64_t nfacts = r->Varint();
      std::vector<Fact> facts;
      for (uint64_t j = 0; j < nfacts && !r->failed(); ++j) {
        Result<Fact> fact = DecodeFact(r);
        if (!fact.ok()) return fact.status();
        facts.push_back(*std::move(fact));
      }
      if (r->failed()) return MalformedPayload("replace_block");
      delta.ReplaceBlock(relation, std::move(key), std::move(facts));
    } else {
      return MalformedPayload("delta op tag");
    }
  }
  if (r->failed()) return MalformedPayload("delta");
  return delta;
}

void EncodeDatabase(Writer* w, const Database& db) {
  const Schema& schema = db.schema();
  w->Varint(schema.relations().size());
  for (SymbolId rel : schema.relations()) {
    Signature sig = *schema.Find(rel);
    w->Str(SymbolName(rel));
    w->Varint(static_cast<uint64_t>(sig.arity));
    w->Varint(static_cast<uint64_t>(sig.key_arity));
  }
  w->Varint(db.facts().size());
  for (const Fact& fact : db.facts()) EncodeFact(w, fact);
}

Result<Database> DecodeDatabase(Reader* r) {
  uint64_t nrels = r->Varint();
  Schema schema;
  for (uint64_t i = 0; i < nrels && !r->failed(); ++i) {
    std::string_view name = r->Str();
    uint64_t arity = r->Varint();
    uint64_t key_arity = r->Varint();
    if (r->failed() || arity > kMaxArity || key_arity > arity) {
      return MalformedPayload("schema signature");
    }
    Status added = schema.AddRelation(name, static_cast<int>(arity),
                                      static_cast<int>(key_arity));
    if (!added.ok()) return added;
  }
  if (r->failed()) return MalformedPayload("schema");
  Database db(std::move(schema));
  uint64_t nfacts = r->Varint();
  for (uint64_t i = 0; i < nfacts && !r->failed(); ++i) {
    Result<Fact> fact = DecodeFact(r);
    if (!fact.ok()) return fact.status();
    Status added = db.AddFact(*fact);
    if (!added.ok()) return added;
  }
  if (r->failed()) return MalformedPayload("database");
  return db;
}

void EncodeRows(Writer* w, const Session::RowSet& rows) {
  w->Varint(rows.size());
  for (const std::vector<SymbolId>& row : rows) {
    w->Varint(row.size());
    for (SymbolId v : row) w->Str(SymbolName(v));
  }
}

Result<Session::RowSet> DecodeRows(Reader* r) {
  uint64_t nrows = r->Varint();
  Session::RowSet rows;
  for (uint64_t i = 0; i < nrows && !r->failed(); ++i) {
    uint64_t width = r->Varint();
    if (r->failed() || width > kMaxArity) return MalformedPayload("row");
    std::vector<SymbolId> row;
    row.reserve(width);
    for (uint64_t j = 0; j < width; ++j) {
      row.push_back(InternSymbol(r->Str()));
    }
    rows.push_back(std::move(row));
  }
  if (r->failed()) return MalformedPayload("rows");
  return rows;
}

// ----------------------------------------------------- request messages

void EncodeHelloRequest(Writer* w, const HelloRequest& m) {
  w->Varint(m.min_version);
  w->Varint(m.max_version);
  w->Str(m.client_name);
}

Result<HelloRequest> DecodeHelloRequest(Reader* r) {
  HelloRequest m;
  m.min_version = r->Varint();
  m.max_version = r->Varint();
  m.client_name = std::string(r->Str());
  if (r->failed()) return MalformedPayload("hello");
  return Finish(r, std::move(m), "hello");
}

void EncodeHelloResponse(Writer* w, const HelloResponse& m) {
  w->Varint(m.version);
  w->Str(m.server_name);
  w->Varint(m.max_payload);
}

Result<HelloResponse> DecodeHelloResponse(Reader* r) {
  HelloResponse m;
  m.version = r->Varint();
  m.server_name = std::string(r->Str());
  m.max_payload = r->Varint();
  if (r->failed()) return MalformedPayload("hello response");
  return Finish(r, std::move(m), "hello response");
}

void EncodeCreateDatabaseRequest(Writer* w, const CreateDatabaseRequest& m) {
  w->Str(m.name);
  EncodeDatabase(w, m.db);
}

Result<CreateDatabaseRequest> DecodeCreateDatabaseRequest(Reader* r) {
  CreateDatabaseRequest m;
  m.name = std::string(r->Str());
  Result<Database> db = DecodeDatabase(r);
  if (!db.ok()) return db.status();
  m.db = *std::move(db);
  return Finish(r, std::move(m), "create_database");
}

void EncodeNameRequest(Writer* w, const NameRequest& m) { w->Str(m.name); }

Result<NameRequest> DecodeNameRequest(Reader* r) {
  NameRequest m;
  m.name = std::string(r->Str());
  if (r->failed()) return MalformedPayload("name");
  return Finish(r, std::move(m), "name");
}

void EncodeNameListResponse(Writer* w, const NameListResponse& m) {
  EncodeStringList(w, m.names);
}

Result<NameListResponse> DecodeNameListResponse(Reader* r) {
  NameListResponse m;
  if (!DecodeStringList(r, &m.names)) return MalformedPayload("name list");
  return Finish(r, std::move(m), "name list");
}

void EncodeOpenStoreResponse(Writer* w, const OpenStoreResponse& m) {
  w->Varint(m.epoch);
  w->Varint(m.replayed);
  w->Bool(m.torn_tail_recovered);
}

Result<OpenStoreResponse> DecodeOpenStoreResponse(Reader* r) {
  OpenStoreResponse m;
  m.epoch = r->Varint();
  m.replayed = r->Varint();
  m.torn_tail_recovered = r->Bool();
  if (r->failed()) return MalformedPayload("open_store response");
  return Finish(r, std::move(m), "open_store response");
}

void EncodePrepareRequest(Writer* w, const PrepareRequest& m) {
  EncodeQuery(w, m.query);
  EncodeStringList(w, m.free_vars);
  w->Str(m.force_solver);
}

Result<PrepareRequest> DecodePrepareRequest(Reader* r) {
  PrepareRequest m;
  Result<Query> q = DecodeQuery(r);
  if (!q.ok()) return q.status();
  m.query = *std::move(q);
  if (!DecodeStringList(r, &m.free_vars)) {
    return MalformedPayload("prepare free_vars");
  }
  m.force_solver = std::string(r->Str());
  if (r->failed()) return MalformedPayload("prepare");
  return Finish(r, std::move(m), "prepare");
}

void EncodePrepareResponse(Writer* w, const PrepareResponse& m) {
  w->Str(m.prepared_id);
  w->Str(m.solver_kind);
  w->Str(m.complexity);
  w->Bool(m.parameterized);
}

Result<PrepareResponse> DecodePrepareResponse(Reader* r) {
  PrepareResponse m;
  m.prepared_id = std::string(r->Str());
  m.solver_kind = std::string(r->Str());
  m.complexity = std::string(r->Str());
  m.parameterized = r->Bool();
  if (r->failed()) return MalformedPayload("prepare response");
  return Finish(r, std::move(m), "prepare response");
}

void EncodeSolveCall(Writer* w, const SolveCall& m) {
  w->Str(m.database);
  w->Str(m.prepared_id);
  EncodeOptionalQuery(w, m.query);
}

Result<SolveCall> DecodeSolveCall(Reader* r) {
  SolveCall m;
  m.database = std::string(r->Str());
  m.prepared_id = std::string(r->Str());
  Result<std::optional<Query>> q = DecodeOptionalQuery(r);
  if (!q.ok()) return q.status();
  m.query = *std::move(q);
  if (r->failed()) return MalformedPayload("solve");
  return m;  // embedded in SolveBatch: no Finish here
}

void EncodeSolveReply(Writer* w, const SolveReply& m) {
  w->Bool(m.certain);
  w->Str(m.solver_kind);
  w->Varint(m.epoch);
}

Result<SolveReply> DecodeSolveReply(Reader* r) {
  SolveReply m;
  m.certain = r->Bool();
  m.solver_kind = std::string(r->Str());
  m.epoch = r->Varint();
  if (r->failed()) return MalformedPayload("solve reply");
  return m;
}

void EncodeSolveBatchRequest(Writer* w, const SolveBatchRequest& m) {
  w->Varint(m.calls.size());
  for (const SolveCall& call : m.calls) EncodeSolveCall(w, call);
}

Result<SolveBatchRequest> DecodeSolveBatchRequest(Reader* r) {
  uint64_t n = r->Varint();
  SolveBatchRequest m;
  for (uint64_t i = 0; i < n && !r->failed(); ++i) {
    Result<SolveCall> call = DecodeSolveCall(r);
    if (!call.ok()) return call.status();
    m.calls.push_back(*std::move(call));
  }
  if (r->failed()) return MalformedPayload("solve batch");
  return Finish(r, std::move(m), "solve batch");
}

void EncodeSolveBatchResponse(Writer* w, const SolveBatchResponse& m) {
  w->Varint(m.items.size());
  for (const auto& [status, reply] : m.items) {
    EncodeStatus(w, status);
    if (status.ok()) EncodeSolveReply(w, reply);
  }
}

Result<SolveBatchResponse> DecodeSolveBatchResponse(Reader* r) {
  uint64_t n = r->Varint();
  SolveBatchResponse m;
  for (uint64_t i = 0; i < n && !r->failed(); ++i) {
    Status status = DecodeStatus(r);
    if (r->failed()) return MalformedPayload("solve batch response");
    SolveReply reply;
    if (status.ok()) {
      Result<SolveReply> decoded = DecodeSolveReply(r);
      if (!decoded.ok()) return decoded.status();
      reply = *std::move(decoded);
    }
    m.items.emplace_back(std::move(status), std::move(reply));
  }
  if (r->failed()) return MalformedPayload("solve batch response");
  return Finish(r, std::move(m), "solve batch response");
}

void EncodeCertainAnswersCall(Writer* w, const CertainAnswersCall& m) {
  w->Str(m.database);
  w->Str(m.prepared_id);
  EncodeOptionalQuery(w, m.query);
  EncodeStringList(w, m.free_vars);
  w->Varint(m.page_size);
  w->Str(m.page_token);
}

Result<CertainAnswersCall> DecodeCertainAnswersCall(Reader* r) {
  CertainAnswersCall m;
  m.database = std::string(r->Str());
  m.prepared_id = std::string(r->Str());
  Result<std::optional<Query>> q = DecodeOptionalQuery(r);
  if (!q.ok()) return q.status();
  m.query = *std::move(q);
  if (!DecodeStringList(r, &m.free_vars)) {
    return MalformedPayload("certain_answers free_vars");
  }
  m.page_size = r->Varint();
  m.page_token = std::string(r->Str());
  if (r->failed()) return MalformedPayload("certain_answers");
  return Finish(r, std::move(m), "certain_answers");
}

void EncodeCertainAnswersReply(Writer* w, const CertainAnswersReply& m) {
  EncodeRows(w, m.rows);
  w->Str(m.next_page_token);
  w->Varint(m.total_rows);
  w->Varint(m.epoch);
}

Result<CertainAnswersReply> DecodeCertainAnswersReply(Reader* r) {
  CertainAnswersReply m;
  Result<Session::RowSet> rows = DecodeRows(r);
  if (!rows.ok()) return rows.status();
  m.rows = *std::move(rows);
  m.next_page_token = std::string(r->Str());
  m.total_rows = r->Varint();
  m.epoch = r->Varint();
  if (r->failed()) return MalformedPayload("certain_answers reply");
  return Finish(r, std::move(m), "certain_answers reply");
}

void EncodeApplyDeltaCall(Writer* w, const ApplyDeltaCall& m) {
  w->Str(m.database);
  EncodeDelta(w, m.delta);
}

Result<ApplyDeltaCall> DecodeApplyDeltaCall(Reader* r) {
  ApplyDeltaCall m;
  m.database = std::string(r->Str());
  Result<Delta> delta = DecodeDelta(r);
  if (!delta.ok()) return delta.status();
  m.delta = *std::move(delta);
  return Finish(r, std::move(m), "apply_delta");
}

void EncodeApplyDeltaReply(Writer* w, const ApplyDeltaReply& m) {
  w->Varint(m.epoch);
}

Result<ApplyDeltaReply> DecodeApplyDeltaReply(Reader* r) {
  ApplyDeltaReply m;
  m.epoch = r->Varint();
  if (r->failed()) return MalformedPayload("apply_delta reply");
  return Finish(r, std::move(m), "apply_delta reply");
}

void EncodeStatsCall(Writer* w, const StatsCall& m) { w->Str(m.database); }

Result<StatsCall> DecodeStatsCall(Reader* r) {
  StatsCall m;
  m.database = std::string(r->Str());
  if (r->failed()) return MalformedPayload("stats");
  return Finish(r, std::move(m), "stats");
}

void EncodeStatsReply(Writer* w, const StatsReply& m) {
  w->Varint(m.counters.size());
  for (const auto& [key, value] : m.counters) {
    w->Str(key);
    w->Varint(value);
  }
}

Result<StatsReply> DecodeStatsReply(Reader* r) {
  uint64_t n = r->Varint();
  StatsReply m;
  for (uint64_t i = 0; i < n && !r->failed(); ++i) {
    std::string key(r->Str());
    uint64_t value = r->Varint();
    if (!r->failed()) m.counters[std::move(key)] = value;
  }
  if (r->failed()) return MalformedPayload("stats reply");
  return Finish(r, std::move(m), "stats reply");
}

void EncodeMetricsReply(Writer* w, const MetricsReply& m) { w->Str(m.text); }

Result<MetricsReply> DecodeMetricsReply(Reader* r) {
  MetricsReply m;
  m.text = std::string(r->Str());
  if (r->failed()) return MalformedPayload("metrics reply");
  return Finish(r, std::move(m), "metrics reply");
}

std::map<std::string, uint64_t> FlattenStats(
    const Service::StatsResponse& stats) {
  std::map<std::string, uint64_t> out;
  out["plan_cache.hits"] = stats.plan_cache.hits;
  out["plan_cache.misses"] = stats.plan_cache.misses;
  out["plan_cache.evictions"] = stats.plan_cache.evictions;
  out["plan_cache.negative_hits"] = stats.plan_cache.negative_hits;
  out["plan_cache.shard_waits"] = stats.plan_cache.shard_waits;
  out["plan_cache.entries"] = stats.plan_cache.entries;
  out["plan_cache.negative_entries"] = stats.plan_cache.negative_entries;
  out["plan_cache.capacity"] = stats.plan_cache.capacity;
  out["session.deltas_applied"] = stats.session.deltas_applied;
  out["session.facts_added"] = stats.session.facts_added;
  out["session.facts_removed"] = stats.session.facts_removed;
  out["session.solves"] = stats.session.solves;
  out["session.answers_cached"] = stats.session.answers_cached;
  out["session.answers_incremental"] = stats.session.answers_incremental;
  out["session.answers_full"] = stats.session.answers_full;
  out["session.rows_reused"] = stats.session.rows_reused;
  out["session.rows_decided"] = stats.session.rows_decided;
  out["session.parallel_batches"] = stats.session.parallel_batches;
  out["session.parallel_chunks"] = stats.session.parallel_chunks;
  out["contention.interner_lookups"] = stats.contention.interner_lookups;
  out["contention.interner_misses"] = stats.contention.interner_misses;
  out["contention.interner_symbols"] = stats.contention.interner_symbols;
  out["contention.plan_cache_shard_waits"] =
      stats.contention.plan_cache_shard_waits;
  out["contention.gate_writer_handoffs"] =
      stats.contention.gate_writer_handoffs;
  out["contention.gate_reader_waits"] = stats.contention.gate_reader_waits;
  out["store.durable_databases"] = stats.store.durable_databases;
  out["store.read_only_databases"] = stats.store.read_only_databases;
  out["store.wal_appends"] = stats.store.wal_appends;
  out["store.wal_appended_bytes"] = stats.store.wal_appended_bytes;
  out["store.wal_bytes"] = stats.store.wal_bytes;
  out["store.snapshots_written"] = stats.store.snapshots_written;
  out["store.compaction_failures"] = stats.store.compaction_failures;
  out["store.torn_tails_recovered"] = stats.store.torn_tails_recovered;
  out["store.snapshots_skipped"] = stats.store.snapshots_skipped;
  out["backend.pushed_solves"] = stats.backend.pushed_solves;
  out["backend.pushed_answer_sets"] = stats.backend.pushed_answer_sets;
  out["backend.pushed_row_spans"] = stats.backend.pushed_row_spans;
  out["backend.pushed_rows"] = stats.backend.pushed_rows;
  out["backend.cursors_opened"] = stats.backend.cursors_opened;
  out["backend.fallback_admitted"] = stats.backend.fallback_admitted;
  out["backend.fallback_refused"] = stats.backend.fallback_refused;
  out["backend.loads"] = stats.backend.loads;
  out["backend.mutations_mirrored"] = stats.backend.mutations_mirrored;
  out["backend.transactions_committed"] =
      stats.backend.transactions_committed;
  out["backend.statements_prepared"] = stats.backend.statements_prepared;
  out["backend.statement_cache_hits"] = stats.backend.statement_cache_hits;
  out["backend.sqlite_databases"] = stats.sqlite_databases;
  out["backend.degraded_backends"] = stats.degraded_backends;
  out["service.databases"] = stats.databases;
  out["service.prepared_queries"] = stats.prepared_queries;
  out["service.open_cursors"] = stats.open_cursors;
  for (const auto& [kind, counters] : stats.solvers) {
    std::string prefix = std::string("solver.") + ToString(kind);
    out[prefix + ".calls"] = static_cast<uint64_t>(counters.calls);
    out[prefix + ".certain"] = static_cast<uint64_t>(counters.certain);
  }
  return out;
}

}  // namespace net
}  // namespace cqa
