#include "net/chaos.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

namespace cqa {
namespace net {

namespace {

/// shutdown(2) both halves so a blocked recv/send in a pump thread
/// returns immediately; close follows once both pumps exit.
void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t sent = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(sent);
  }
  return true;
}

}  // namespace

/// Both sockets of one proxied connection. `closed` makes the two pump
/// threads' teardown race idempotent.
struct FaultInjectingTransport::ProxiedConn {
  int client_fd = -1;
  int server_fd = -1;
  std::atomic<bool> closed{false};

  void CloseBoth() {
    if (closed.exchange(true)) return;
    ShutdownFd(client_fd);
    ShutdownFd(server_fd);
  }
};

Status FaultInjectingTransport::Start(const std::string& upstream_host,
                                      uint16_t upstream_port) {
  if (started_) return Status::FailedPrecondition("proxy already started");

  upstream_host_ = upstream_host.empty() ? "127.0.0.1" : upstream_host;
  upstream_port_ = upstream_port;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable("proxy bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  started_ = true;
  accept_thread_ = std::thread(&FaultInjectingTransport::AcceptLoop, this);
  return Status::OK();
}

void FaultInjectingTransport::Stop() {
  if (!started_) return;
  stopping_.store(true);
  ShutdownFd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<ProxiedConn>> conns;
  std::vector<std::thread> pumps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
    pumps.swap(pumps_);
  }
  for (auto& conn : conns) conn->CloseBoth();
  for (std::thread& t : pumps) t.join();
  for (auto& conn : conns) {
    if (conn->client_fd >= 0) ::close(conn->client_fd);
    if (conn->server_fd >= 0) ::close(conn->server_fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

FaultInjectingTransport::Counters FaultInjectingTransport::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void FaultInjectingTransport::AcceptLoop() {
  for (;;) {
    int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (Stop) or unrecoverable
    }
    if (stopping_.load()) {
      ::close(client_fd);
      return;
    }

    int server_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(upstream_port_);
    if (server_fd < 0 ||
        ::inet_pton(AF_INET, upstream_host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(server_fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      if (server_fd >= 0) ::close(server_fd);
      ::close(client_fd);
      continue;  // upstream refused; the client sees a clean close
    }
    int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(server_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<ProxiedConn>();
    conn->client_fd = client_fd;
    conn->server_fd = server_fd;
    uint64_t conn_id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.connections;
      conn_id = next_conn_id_++;
      conns_.push_back(conn);
      // Derived per-direction seeds keep every run of a given
      // (plan.seed, connection order) byte-for-byte reproducible.
      pumps_.emplace_back(&FaultInjectingTransport::Pump, this, conn,
                          client_fd, server_fd, plan_.seed * 1000003 + conn_id);
      pumps_.emplace_back(&FaultInjectingTransport::Pump, this, conn,
                          server_fd, client_fd,
                          plan_.seed * 1000003 + conn_id + 500000);
    }
  }
}

void FaultInjectingTransport::Pump(std::shared_ptr<ProxiedConn> conn, int from,
                                   int to, uint64_t rng_seed) {
  std::mt19937_64 rng(rng_seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  char buf[16 * 1024];
  for (;;) {
    ssize_t got = ::recv(from, buf, sizeof(buf), 0);
    if (got == 0) break;  // clean close: propagate by closing both
    if (got < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() from Stop/drop, or a real error
    }
    size_t size = static_cast<size_t>(got);

    if (plan_.drop_prob > 0 && coin(rng) < plan_.drop_prob) {
      // Mid-stream cut, possibly mid-frame: both peers see the tear.
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.drops;
      break;
    }
    if (plan_.delay_prob > 0 && coin(rng) < plan_.delay_prob) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.delays;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          1 + rng() % std::max<uint64_t>(1, plan_.max_delay_ms)));
    }
    if (plan_.flip_prob > 0 && coin(rng) < plan_.flip_prob) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.flips;
      }
      buf[rng() % size] ^= static_cast<char>(1 + rng() % 255);
    }
    if (plan_.partial_write_prob > 0 && coin(rng) < plan_.partial_write_prob &&
        size > 1) {
      // Forward a short prefix first, then the rest — the receiver must
      // reassemble frames across arbitrary boundaries.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.partial_writes;
      }
      size_t prefix =
          1 + rng() % std::min(size - 1, std::max<size_t>(1, plan_.max_chunk));
      if (!SendAll(to, buf, prefix)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (!SendAll(to, buf + prefix, size - prefix)) break;
      continue;
    }
    if (!SendAll(to, buf, size)) break;
  }
  conn->CloseBoth();
}

}  // namespace net
}  // namespace cqa
