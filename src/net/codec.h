#ifndef CQA_NET_CODEC_H_
#define CQA_NET_CODEC_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "net/wire.h"
#include "serve/service.h"
#include "serve/session.h"
#include "util/status.h"

/// \file
/// Payload codecs for every protocol-v1 message: the middle half of the
/// binary protocol (frames live in net/wire.h, the socket loop in
/// net/server.h). The NORMATIVE field tables are docs/PROTOCOL.md §5–6;
/// each `Encode*` / `Decode*` pair here implements exactly one of them.
///
/// Design rules the codecs follow:
///   * symbols travel as strings and are (re)interned on decode —
///     `SymbolId`s never cross a process boundary;
///   * decoders validate EVERYTHING: every length against the remaining
///     bytes, every enum tag, and that no trailing bytes remain. A
///     malformed payload yields InvalidArgument (never a crash, never
///     an out-of-bounds read) — tests/net_codec_test.cc holds the
///     hostile-input property suite;
///   * decoders return the same structs `cqa::Service` speaks, so the
///     server dispatch is a thin verb switch.

namespace cqa {
namespace net {

// ------------------------------------------------------------- status

/// status := u8 code ++ string message. Codes are the numeric values of
/// `StatusCode` (wire-frozen; docs/PROTOCOL.md §3). An unknown code
/// decodes as kInternal rather than failing, so a newer peer's new
/// error still surfaces as an error.
void EncodeStatus(Writer* w, const Status& status);
Status DecodeStatus(Reader* r);

// ---------------------------------------------------- data structures

/// query := varint natoms ++ atom*; atom := string relation ++
/// varint key_arity ++ varint arity ++ term*; term := u8 tag ++ string.
void EncodeQuery(Writer* w, const Query& q);
/// Structural decode; enforces key_arity <= arity and arity <=
/// kMaxArity per atom.
Result<Query> DecodeQuery(Reader* r);

/// fact := string relation ++ varint key_arity ++ varint arity ++
/// string*arity.
void EncodeFact(Writer* w, const Fact& fact);
Result<Fact> DecodeFact(Reader* r);

/// delta := varint nops ++ op*; op tags: 1 insert, 2 remove,
/// 3 replace_block (docs/PROTOCOL.md §5.4).
void EncodeDelta(Writer* w, const Delta& delta);
Result<Delta> DecodeDelta(Reader* r);

/// database := schema ++ varint nfacts ++ fact*; schema := varint n ++
/// (string name ++ varint arity ++ varint key_arity)*.
void EncodeDatabase(Writer* w, const Database& db);
Result<Database> DecodeDatabase(Reader* r);

/// rows := varint nrows ++ row*; row := varint width ++ string*width.
void EncodeRows(Writer* w, const Session::RowSet& rows);
Result<Session::RowSet> DecodeRows(Reader* r);

/// Arity cap applied while decoding atoms, facts and rows: wide enough
/// for any real relation, small enough that a hostile count cannot
/// drive a large allocation before running out of payload bytes.
constexpr uint64_t kMaxArity = 1024;

// ------------------------------------------------- request/response DTOs
//
// Wire-side mirrors of the Service structs. They differ in exactly the
// places process locality forces them to: prepared handles become
// `prepared_id` strings (minted by the server's Prepare), and queries
// travel structurally.

struct HelloRequest {
  uint64_t min_version = kProtocolVersion;
  uint64_t max_version = kProtocolVersion;
  std::string client_name;
};
struct HelloResponse {
  uint64_t version = kProtocolVersion;
  std::string server_name;
  uint64_t max_payload = kMaxPayload;
};

struct CreateDatabaseRequest {
  std::string name;
  Database db;
};

struct NameRequest {  // DropDatabase / OpenStore
  std::string name;
};

struct NameListResponse {  // ListDatabases / ListStores
  std::vector<std::string> names;
};

struct OpenStoreResponse {
  uint64_t epoch = 0;
  uint64_t replayed = 0;
  bool torn_tail_recovered = false;
};

struct PrepareRequest {
  Query query;
  /// Free-variable names (strings; interned server-side).
  std::vector<std::string> free_vars;
  /// Solver override by stable name ("sat", "oracle", ...); empty =
  /// classifier's choice.
  std::string force_solver;
};
struct PrepareResponse {
  /// Server-minted handle id; quote it in Solve / CertainAnswers /
  /// SolveBatch. Opaque. A server that evicted or restarted answers
  /// NotFound for it — re-Prepare and retry.
  std::string prepared_id;
  std::string solver_kind;   // stable SolverKind name
  std::string complexity;    // informational ComplexityClassName
  bool parameterized = false;
};

struct SolveCall {
  std::string database;
  /// Exactly one of prepared_id / query is set (mirrors the Service
  /// contract).
  std::string prepared_id;
  std::optional<Query> query;
};
struct SolveReply {
  bool certain = false;
  std::string solver_kind;
  uint64_t epoch = 0;
};

struct SolveBatchRequest {
  std::vector<SolveCall> calls;
};
/// Per-item status + reply, positionally aligned with the request.
struct SolveBatchResponse {
  std::vector<std::pair<Status, SolveReply>> items;
};

struct CertainAnswersCall {
  std::string database;
  std::string prepared_id;
  std::optional<Query> query;
  std::vector<std::string> free_vars;
  uint64_t page_size = 0;
  std::string page_token;
};
struct CertainAnswersReply {
  Session::RowSet rows;
  std::string next_page_token;
  uint64_t total_rows = 0;
  uint64_t epoch = 0;
};

struct ApplyDeltaCall {
  std::string database;
  Delta delta;
};
struct ApplyDeltaReply {
  uint64_t epoch = 0;
};

struct StatsCall {
  std::string database;  // empty = aggregate
};
/// stats := varint n ++ (string key ++ varint value)*. Keys are the
/// flattened counter names of `Service::StatsResponse`
/// (docs/PROTOCOL.md §6.9); receivers MUST ignore unknown keys, which
/// is what lets the counter set grow without a version bump.
struct StatsReply {
  std::map<std::string, uint64_t> counters;
};

struct MetricsReply {
  /// Prometheus text exposition (net/metrics.h renders it).
  std::string text;
};

// ------------------------------------------------------ encode/decode
//
// One pair per message. Decoders consume the WHOLE reader and fail on
// trailing bytes.

void EncodeHelloRequest(Writer* w, const HelloRequest& m);
Result<HelloRequest> DecodeHelloRequest(Reader* r);
void EncodeHelloResponse(Writer* w, const HelloResponse& m);
Result<HelloResponse> DecodeHelloResponse(Reader* r);

void EncodeCreateDatabaseRequest(Writer* w, const CreateDatabaseRequest& m);
Result<CreateDatabaseRequest> DecodeCreateDatabaseRequest(Reader* r);

void EncodeNameRequest(Writer* w, const NameRequest& m);
Result<NameRequest> DecodeNameRequest(Reader* r);

void EncodeNameListResponse(Writer* w, const NameListResponse& m);
Result<NameListResponse> DecodeNameListResponse(Reader* r);

void EncodeOpenStoreResponse(Writer* w, const OpenStoreResponse& m);
Result<OpenStoreResponse> DecodeOpenStoreResponse(Reader* r);

void EncodePrepareRequest(Writer* w, const PrepareRequest& m);
Result<PrepareRequest> DecodePrepareRequest(Reader* r);
void EncodePrepareResponse(Writer* w, const PrepareResponse& m);
Result<PrepareResponse> DecodePrepareResponse(Reader* r);

void EncodeSolveCall(Writer* w, const SolveCall& m);
Result<SolveCall> DecodeSolveCall(Reader* r);
void EncodeSolveReply(Writer* w, const SolveReply& m);
Result<SolveReply> DecodeSolveReply(Reader* r);

void EncodeSolveBatchRequest(Writer* w, const SolveBatchRequest& m);
Result<SolveBatchRequest> DecodeSolveBatchRequest(Reader* r);
void EncodeSolveBatchResponse(Writer* w, const SolveBatchResponse& m);
Result<SolveBatchResponse> DecodeSolveBatchResponse(Reader* r);

void EncodeCertainAnswersCall(Writer* w, const CertainAnswersCall& m);
Result<CertainAnswersCall> DecodeCertainAnswersCall(Reader* r);
void EncodeCertainAnswersReply(Writer* w, const CertainAnswersReply& m);
Result<CertainAnswersReply> DecodeCertainAnswersReply(Reader* r);

void EncodeApplyDeltaCall(Writer* w, const ApplyDeltaCall& m);
Result<ApplyDeltaCall> DecodeApplyDeltaCall(Reader* r);
void EncodeApplyDeltaReply(Writer* w, const ApplyDeltaReply& m);
Result<ApplyDeltaReply> DecodeApplyDeltaReply(Reader* r);

void EncodeStatsCall(Writer* w, const StatsCall& m);
Result<StatsCall> DecodeStatsCall(Reader* r);
void EncodeStatsReply(Writer* w, const StatsReply& m);
Result<StatsReply> DecodeStatsReply(Reader* r);

void EncodeMetricsReply(Writer* w, const MetricsReply& m);
Result<MetricsReply> DecodeMetricsReply(Reader* r);

/// Flattens a Service stats snapshot into the wire counter map
/// (shared by the kStats verb and the metrics renderer, so the two
/// exports can never disagree on a counter's name).
std::map<std::string, uint64_t> FlattenStats(
    const Service::StatsResponse& stats);

}  // namespace net
}  // namespace cqa

#endif  // CQA_NET_CODEC_H_
