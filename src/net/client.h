#ifndef CQA_NET_CLIENT_H_
#define CQA_NET_CLIENT_H_

#include <cstdint>
#include <random>
#include <string>

#include "net/codec.h"
#include "net/wire.h"
#include "util/deadline.h"
#include "util/status.h"

/// \file
/// A blocking client for the v1 wire protocol — one connection, one
/// request in flight, synchronous Call. It exists so tests, the
/// examples and the load generator exercise the REAL protocol path
/// (frame → socket → server → Service → socket → frame) with no mock
/// seam; a production client wanting pipelining would reuse net/wire.h
/// and net/codec.h directly and keep a request-id window instead.
///
/// Every method returns the remote Status verbatim: calling
/// `Solve` on a dropped database over the wire fails with exactly the
/// Status an in-process `Service::Solve` caller would see (the
/// acceptance bar of docs/PROTOCOL.md §1).
///
/// Robustness (docs/PROTOCOL.md "Timeout & retry contract"):
///   * `connect_timeout_ms` bounds connection establishment
///     (non-blocking connect + poll); `io_timeout_ms` bounds every
///     socket read/write (SO_RCVTIMEO / SO_SNDTIMEO). Both surface as
///     kDeadlineExceeded.
///   * `call_deadline_ms` bounds a whole typed call INCLUDING retries;
///     the remaining budget rides each request as the wire deadline
///     prefix (kDeadlineBit), so the server stops working on a request
///     the client has already given up on.
///   * typed calls retry up to `max_attempts` with exponential backoff
///     + jitter. A kUnavailable RESPONSE (shed / draining — the server
///     answered without executing) is retried for every verb; a
///     TRANSPORT failure (connection died mid-call, outcome unknown) is
///     retried only for idempotent verbs — never CreateDatabase,
///     DropDatabase, OpenStore or ApplyDelta, whose effects could
///     otherwise double-apply. The raw `Call` never retries.

namespace cqa {
namespace net {

struct ClientOptions {
  /// Bound on connection establishment; 0 = block indefinitely.
  uint64_t connect_timeout_ms = 5000;
  /// Bound on each socket read/write; 0 = block indefinitely.
  uint64_t io_timeout_ms = 0;
  /// Total attempts per typed call (1 = no retries).
  int max_attempts = 1;
  /// Exponential backoff between attempts: first wait, doubling up to
  /// the cap, each jittered to [wait/2, wait].
  uint64_t backoff_initial_ms = 10;
  uint64_t backoff_max_ms = 1000;
  /// Budget for one whole typed call, retries and backoff included;
  /// also sent as the wire deadline prefix. 0 = unlimited.
  uint64_t call_deadline_ms = 0;
  /// Announced in the Hello handshake.
  std::string client_name = "cqa-client";
};

class Client {
 public:
  Client() = default;
  explicit Client(const ClientOptions& options) : options_(options) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (bounded by `connect_timeout_ms`) and exchanges the Hello
  /// handshake (verifying the server speaks protocol v1). Unavailable
  /// when the endpoint refuses; kDeadlineExceeded on timeout. The
  /// endpoint is remembered so retries can reconnect.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  /// The server's Hello banner (valid after Connect).
  const HelloResponse& hello() const { return hello_; }

  /// Per-call budget knob (see ClientOptions::call_deadline_ms);
  /// applies to every subsequent typed call.
  void set_call_deadline_ms(uint64_t ms) { options_.call_deadline_ms = ms; }
  /// Retries performed across all typed calls (attempt 2 and beyond).
  uint64_t retries_total() const { return retries_total_; }

  // ---------------------------------------------------- typed wrappers
  Status CreateDatabase(const std::string& name, const Database& db);
  Status DropDatabase(const std::string& name);
  Result<NameListResponse> ListDatabases();
  Result<NameListResponse> ListStores();
  Result<OpenStoreResponse> OpenStore(const std::string& name);
  Result<PrepareResponse> Prepare(const PrepareRequest& request);
  Result<SolveReply> Solve(const SolveCall& call);
  Result<SolveBatchResponse> SolveBatch(const SolveBatchRequest& request);
  Result<CertainAnswersReply> CertainAnswers(const CertainAnswersCall& call);
  Result<ApplyDeltaReply> ApplyDelta(const ApplyDeltaCall& call);
  Result<StatsReply> Stats(const StatsCall& call);
  Result<MetricsReply> Metrics();

  /// Raw round trip: sends `payload` under `verb`, blocks for the
  /// response frame with the matching request id, decodes the leading
  /// Status and returns the remaining body bytes in `*body`. The
  /// building block under every typed wrapper; exposed for tests that
  /// need to speak malformed or unknown verbs. NEVER retries and never
  /// attaches a deadline prefix — what you send is what goes out.
  Status Call(Verb verb, const std::string& payload, std::string* body);

  /// Sends raw pre-framed bytes without waiting (tests use this to
  /// pipeline requests past the admission budget and to inject hostile
  /// frames).
  Status SendRaw(const std::string& bytes);
  /// Blocks for the next response frame, whatever its request id.
  Status ReadFrame(Frame* frame);

 private:
  /// One attempt: frame (raw verb byte — may carry kDeadlineBit), send,
  /// await the matching response.
  Status CallOnce(uint8_t verb_byte, const std::string& payload,
                  std::string* body);
  /// The retry loop under every typed wrapper (see file doc).
  Status CallRetrying(Verb verb, const std::string& payload,
                      std::string* body);
  Status WriteAll(const char* data, size_t size);
  /// True when a transport failure leaves the verb safe to re-send.
  static bool IsIdempotent(Verb verb);

  ClientOptions options_;
  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint64_t retries_total_ = 0;
  std::string in_;  // read-ahead buffer
  HelloResponse hello_;
  std::mt19937_64 rng_{std::random_device{}()};
};

}  // namespace net
}  // namespace cqa

#endif  // CQA_NET_CLIENT_H_
