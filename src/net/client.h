#ifndef CQA_NET_CLIENT_H_
#define CQA_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/codec.h"
#include "net/wire.h"
#include "util/status.h"

/// \file
/// A minimal blocking client for the v1 wire protocol — one connection,
/// one request in flight, synchronous Call. It exists so tests, the
/// examples and the load generator exercise the REAL protocol path
/// (frame → socket → server → Service → socket → frame) with no mock
/// seam; a production client wanting pipelining would reuse net/wire.h
/// and net/codec.h directly and keep a request-id window instead.
///
/// Every method returns the remote Status verbatim: calling
/// `Solve` on a dropped database over the wire fails with exactly the
/// Status an in-process `Service::Solve` caller would see (the
/// acceptance bar of docs/PROTOCOL.md §1).

namespace cqa {
namespace net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and exchanges the Hello handshake (verifying the server
  /// speaks protocol v1). Unavailable when the endpoint refuses.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  /// The server's Hello banner (valid after Connect).
  const HelloResponse& hello() const { return hello_; }

  // ---------------------------------------------------- typed wrappers
  Status CreateDatabase(const std::string& name, const Database& db);
  Status DropDatabase(const std::string& name);
  Result<NameListResponse> ListDatabases();
  Result<NameListResponse> ListStores();
  Result<OpenStoreResponse> OpenStore(const std::string& name);
  Result<PrepareResponse> Prepare(const PrepareRequest& request);
  Result<SolveReply> Solve(const SolveCall& call);
  Result<SolveBatchResponse> SolveBatch(const SolveBatchRequest& request);
  Result<CertainAnswersReply> CertainAnswers(const CertainAnswersCall& call);
  Result<ApplyDeltaReply> ApplyDelta(const ApplyDeltaCall& call);
  Result<StatsReply> Stats(const StatsCall& call);
  Result<MetricsReply> Metrics();

  /// Raw round trip: sends `payload` under `verb`, blocks for the
  /// response frame with the matching request id, decodes the leading
  /// Status and returns the remaining body bytes in `*body`. The
  /// building block under every typed wrapper; exposed for tests that
  /// need to speak malformed or unknown verbs.
  Status Call(Verb verb, const std::string& payload, std::string* body);

  /// Sends raw pre-framed bytes without waiting (tests use this to
  /// pipeline requests past the admission budget and to inject hostile
  /// frames).
  Status SendRaw(const std::string& bytes);
  /// Blocks for the next response frame, whatever its request id.
  Status ReadFrame(Frame* frame);

 private:
  Status WriteAll(const char* data, size_t size);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string in_;  // read-ahead buffer
  HelloResponse hello_;
};

}  // namespace net
}  // namespace cqa

#endif  // CQA_NET_CLIENT_H_
