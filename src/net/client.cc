#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace cqa {
namespace net {

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Unavailable("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip = host.empty() ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("host is not an IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    return Status::Unavailable("connect() failed: " +
                               std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  // Handshake (PROTOCOL.md §2.3): the client offers its version range;
  // the server answers with the version it will speak or refuses.
  HelloRequest req;
  req.client_name = "cqa-client";
  std::string payload;
  Writer w(&payload);
  EncodeHelloRequest(&w, req);
  std::string body;
  Status st = Call(Verb::kHello, payload, &body);
  if (!st.ok()) {
    Close();
    return st;
  }
  Reader r(body);
  Result<HelloResponse> hello = DecodeHelloResponse(&r);
  if (!hello.ok()) {
    Close();
    return hello.status();
  }
  hello_ = *hello;
  return Status::OK();
}

Status Client::WriteAll(const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t sent = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("send() failed: " +
                                 std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  return WriteAll(bytes.data(), bytes.size());
}

Status Client::ReadFrame(Frame* frame) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    std::string error;
    ParseResult res = TryParseFrame(&in_, frame, &error);
    if (res == ParseResult::kOk) return Status::OK();
    if (res == ParseResult::kFatal) {
      Close();
      return Status::Internal("framing error from server: " + error);
    }
    char buf[64 * 1024];
    ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got == 0) {
      Close();
      return Status::Unavailable("server closed the connection");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Unavailable("recv() failed: " +
                                 std::string(std::strerror(errno)));
    }
    in_.append(buf, static_cast<size_t>(got));
  }
}

Status Client::Call(Verb verb, const std::string& payload, std::string* body) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  uint64_t id = next_request_id_++;
  std::string frame_bytes;
  AppendFrame(&frame_bytes, static_cast<uint8_t>(verb), id, payload);
  CQA_RETURN_NOT_OK(WriteAll(frame_bytes.data(), frame_bytes.size()));

  // One request in flight: the next response with our id is ours. A
  // terminal notice (request id 0) means the server is closing on us.
  for (;;) {
    Frame frame;
    CQA_RETURN_NOT_OK(ReadFrame(&frame));
    if (!(frame.verb & kResponseBit)) {
      Close();
      return Status::Internal("request frame received from server");
    }
    if (frame.request_id != id && frame.request_id != 0) continue;
    Reader r(frame.payload);
    Status status = DecodeStatus(&r);
    if (r.failed()) {
      Close();
      return Status::Internal("undecodable status from server");
    }
    if (frame.request_id == 0) {
      Close();
      return status.ok() ? Status::Unavailable("server closed the connection")
                         : status;
    }
    if (!status.ok()) return status;
    if (body != nullptr) {
      *body = frame.payload.substr(frame.payload.size() - r.remaining());
    }
    return Status::OK();
  }
}

namespace {

/// Decodes the response body with `decode`, propagating decode errors.
template <typename T, typename Decode>
Result<T> DecodeBody(const std::string& body, Decode decode) {
  Reader r(body);
  Result<T> result = decode(&r);
  if (!result.ok()) return result.status();
  return result;
}

}  // namespace

Status Client::CreateDatabase(const std::string& name, const Database& db) {
  CreateDatabaseRequest req;
  req.name = name;
  req.db = db;
  std::string payload;
  Writer w(&payload);
  EncodeCreateDatabaseRequest(&w, req);
  return Call(Verb::kCreateDatabase, payload, nullptr);
}

Status Client::DropDatabase(const std::string& name) {
  std::string payload;
  Writer w(&payload);
  EncodeNameRequest(&w, NameRequest{name});
  return Call(Verb::kDropDatabase, payload, nullptr);
}

Result<NameListResponse> Client::ListDatabases() {
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kListDatabases, "", &body));
  return DecodeBody<NameListResponse>(body, DecodeNameListResponse);
}

Result<NameListResponse> Client::ListStores() {
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kListStores, "", &body));
  return DecodeBody<NameListResponse>(body, DecodeNameListResponse);
}

Result<OpenStoreResponse> Client::OpenStore(const std::string& name) {
  std::string payload;
  Writer w(&payload);
  EncodeNameRequest(&w, NameRequest{name});
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kOpenStore, payload, &body));
  return DecodeBody<OpenStoreResponse>(body, DecodeOpenStoreResponse);
}

Result<PrepareResponse> Client::Prepare(const PrepareRequest& request) {
  std::string payload;
  Writer w(&payload);
  EncodePrepareRequest(&w, request);
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kPrepare, payload, &body));
  return DecodeBody<PrepareResponse>(body, DecodePrepareResponse);
}

Result<SolveReply> Client::Solve(const SolveCall& call) {
  std::string payload;
  Writer w(&payload);
  EncodeSolveCall(&w, call);
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kSolve, payload, &body));
  return DecodeBody<SolveReply>(body, DecodeSolveReply);
}

Result<SolveBatchResponse> Client::SolveBatch(const SolveBatchRequest& request) {
  std::string payload;
  Writer w(&payload);
  EncodeSolveBatchRequest(&w, request);
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kSolveBatch, payload, &body));
  return DecodeBody<SolveBatchResponse>(body, DecodeSolveBatchResponse);
}

Result<CertainAnswersReply> Client::CertainAnswers(
    const CertainAnswersCall& call) {
  std::string payload;
  Writer w(&payload);
  EncodeCertainAnswersCall(&w, call);
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kCertainAnswers, payload, &body));
  return DecodeBody<CertainAnswersReply>(body, DecodeCertainAnswersReply);
}

Result<ApplyDeltaReply> Client::ApplyDelta(const ApplyDeltaCall& call) {
  std::string payload;
  Writer w(&payload);
  EncodeApplyDeltaCall(&w, call);
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kApplyDelta, payload, &body));
  return DecodeBody<ApplyDeltaReply>(body, DecodeApplyDeltaReply);
}

Result<StatsReply> Client::Stats(const StatsCall& call) {
  std::string payload;
  Writer w(&payload);
  EncodeStatsCall(&w, call);
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kStats, payload, &body));
  return DecodeBody<StatsReply>(body, DecodeStatsReply);
}

Result<MetricsReply> Client::Metrics() {
  std::string body;
  CQA_RETURN_NOT_OK(Call(Verb::kMetrics, "", &body));
  return DecodeBody<MetricsReply>(body, DecodeMetricsReply);
}

}  // namespace net
}  // namespace cqa
