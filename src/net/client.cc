#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace cqa {
namespace net {

namespace {

/// EAGAIN/EWOULDBLOCK on a socket with SO_RCVTIMEO/SO_SNDTIMEO set is
/// the io timeout firing, not congestion.
bool IsTimeoutErrno(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

void SetIoTimeout(int fd, uint64_t ms) {
  if (ms == 0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Unavailable("socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* ip = host.empty() ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, ip, &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("host is not an IPv4 address: " + host);
  }

  // Bounded connect: flip non-blocking, connect, poll for writability,
  // read SO_ERROR for the verdict, flip back to blocking.
  int flags = fcntl(fd_, F_GETFL, 0);
  if (options_.connect_timeout_ms > 0 && flags >= 0) {
    fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd p{fd_, POLLOUT, 0};
    int ready = ::poll(&p, 1, static_cast<int>(options_.connect_timeout_ms));
    if (ready <= 0) {
      Close();
      return Status::DeadlineExceeded(
          "connect timed out after " +
          std::to_string(options_.connect_timeout_ms) + "ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Close();
      return Status::Unavailable("connect() failed: " +
                                 std::string(std::strerror(err)));
    }
  } else if (rc < 0) {
    int err = errno;
    Close();
    return Status::Unavailable("connect() failed: " +
                               std::string(std::strerror(err)));
  }
  if (options_.connect_timeout_ms > 0 && flags >= 0) {
    fcntl(fd_, F_SETFL, flags);  // back to blocking for the Call path
  }

  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetIoTimeout(fd_, options_.io_timeout_ms);

  // Handshake (PROTOCOL.md §2.3): the client offers its version range;
  // the server answers with the version it will speak or refuses.
  HelloRequest req;
  req.client_name = options_.client_name;
  std::string payload;
  Writer w(&payload);
  EncodeHelloRequest(&w, req);
  std::string body;
  Status st = Call(Verb::kHello, payload, &body);
  if (!st.ok()) {
    Close();
    return st;
  }
  Reader r(body);
  Result<HelloResponse> hello = DecodeHelloResponse(&r);
  if (!hello.ok()) {
    Close();
    return hello.status();
  }
  hello_ = *hello;
  return Status::OK();
}

Status Client::WriteAll(const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t sent = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (IsTimeoutErrno(errno)) {
        Close();
        return Status::DeadlineExceeded("send timed out (io_timeout_ms)");
      }
      Close();
      return Status::Unavailable("send() failed: " +
                                 std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(sent);
  }
  return Status::OK();
}

Status Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  return WriteAll(bytes.data(), bytes.size());
}

Status Client::ReadFrame(Frame* frame) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  for (;;) {
    std::string error;
    ParseResult res = TryParseFrame(&in_, frame, &error);
    if (res == ParseResult::kOk) return Status::OK();
    if (res == ParseResult::kFatal) {
      Close();
      return Status::Internal("framing error from server: " + error);
    }
    char buf[64 * 1024];
    ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got == 0) {
      Close();
      return Status::Unavailable("server closed the connection");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (IsTimeoutErrno(errno)) {
        Close();
        return Status::DeadlineExceeded("read timed out (io_timeout_ms)");
      }
      Close();
      return Status::Unavailable("recv() failed: " +
                                 std::string(std::strerror(errno)));
    }
    in_.append(buf, static_cast<size_t>(got));
  }
}

Status Client::Call(Verb verb, const std::string& payload, std::string* body) {
  return CallOnce(static_cast<uint8_t>(verb), payload, body);
}

Status Client::CallOnce(uint8_t verb_byte, const std::string& payload,
                        std::string* body) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  uint64_t id = next_request_id_++;
  std::string frame_bytes;
  AppendFrame(&frame_bytes, verb_byte, id, payload);
  CQA_RETURN_NOT_OK(WriteAll(frame_bytes.data(), frame_bytes.size()));

  // One request in flight: the next response with our id is ours. A
  // terminal notice (request id 0) means the server is closing on us.
  for (;;) {
    Frame frame;
    CQA_RETURN_NOT_OK(ReadFrame(&frame));
    if (!(frame.verb & kResponseBit)) {
      Close();
      return Status::Internal("request frame received from server");
    }
    if (frame.request_id != id && frame.request_id != 0) continue;
    Reader r(frame.payload);
    Status status = DecodeStatus(&r);
    if (r.failed()) {
      Close();
      return Status::Internal("undecodable status from server");
    }
    if (frame.request_id == 0) {
      Close();
      return status.ok() ? Status::Unavailable("server closed the connection")
                         : status;
    }
    if (!status.ok()) return status;
    if (body != nullptr) {
      *body = frame.payload.substr(frame.payload.size() - r.remaining());
    }
    return Status::OK();
  }
}

bool Client::IsIdempotent(Verb verb) {
  switch (verb) {
    case Verb::kHello:
    case Verb::kListDatabases:
    case Verb::kListStores:
    case Verb::kPrepare:         // re-preparing mints an equivalent handle
    case Verb::kSolve:
    case Verb::kSolveBatch:
    case Verb::kCertainAnswers:  // reads; replays are harmless
    case Verb::kStats:
    case Verb::kMetrics:
      return true;
    case Verb::kCreateDatabase:
    case Verb::kDropDatabase:
    case Verb::kOpenStore:
    case Verb::kApplyDelta:  // replaying a maybe-applied delta double-applies
      return false;
  }
  return false;
}

Status Client::CallRetrying(Verb verb, const std::string& payload,
                            std::string* body) {
  Deadline overall = options_.call_deadline_ms > 0
                         ? Deadline::AfterMillis(options_.call_deadline_ms)
                         : Deadline();
  const int attempts = std::max(1, options_.max_attempts);
  uint64_t backoff = std::max<uint64_t>(1, options_.backoff_initial_ms);
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_total_;
      // Full-jitter-ish backoff: [backoff/2, backoff], doubling.
      uint64_t wait = backoff / 2 + rng_() % (backoff / 2 + 1);
      wait = std::min(wait, overall.RemainingMillis());
      if (overall.Expired()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      backoff = std::min(backoff * 2,
                         std::max<uint64_t>(1, options_.backoff_max_ms));
      if (!connected()) {
        Status rc = Connect(host_, port_);
        if (!rc.ok()) {
          last = rc;
          continue;
        }
      }
    }
    if (overall.Expired()) break;

    // The remaining budget rides the wire (PROTOCOL.md §2.5), so the
    // server abandons work the client will no longer wait for.
    uint8_t verb_byte = static_cast<uint8_t>(verb);
    std::string prefixed;
    const std::string* to_send = &payload;
    if (!overall.unlimited()) {
      verb_byte |= kDeadlineBit;
      Writer w(&prefixed);
      w.Varint(std::max<uint64_t>(1, overall.RemainingMillis()));
      prefixed += payload;
      to_send = &prefixed;
    }
    last = CallOnce(verb_byte, *to_send, body);
    if (last.ok()) return last;
    // kUnavailable in a RESPONSE frame = the server answered without
    // executing (shed / draining) — blindly retryable for every verb.
    if (last.code() == StatusCode::kUnavailable && connected()) continue;
    // Transport failure (connection gone, outcome unknown): only verbs
    // whose replay is harmless may go again.
    if (!connected() && IsIdempotent(verb)) continue;
    return last;
  }
  if (overall.Expired() &&
      (last.ok() || last.code() == StatusCode::kUnavailable)) {
    return Status::DeadlineExceeded("call deadline expired after " +
                                    std::to_string(options_.call_deadline_ms) +
                                    "ms (retries included)");
  }
  return last;
}

namespace {

/// Decodes the response body with `decode`, propagating decode errors.
template <typename T, typename Decode>
Result<T> DecodeBody(const std::string& body, Decode decode) {
  Reader r(body);
  Result<T> result = decode(&r);
  if (!result.ok()) return result.status();
  return result;
}

}  // namespace

Status Client::CreateDatabase(const std::string& name, const Database& db) {
  CreateDatabaseRequest req;
  req.name = name;
  req.db = db;
  std::string payload;
  Writer w(&payload);
  EncodeCreateDatabaseRequest(&w, req);
  return CallRetrying(Verb::kCreateDatabase, payload, nullptr);
}

Status Client::DropDatabase(const std::string& name) {
  std::string payload;
  Writer w(&payload);
  EncodeNameRequest(&w, NameRequest{name});
  return CallRetrying(Verb::kDropDatabase, payload, nullptr);
}

Result<NameListResponse> Client::ListDatabases() {
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kListDatabases, "", &body));
  return DecodeBody<NameListResponse>(body, DecodeNameListResponse);
}

Result<NameListResponse> Client::ListStores() {
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kListStores, "", &body));
  return DecodeBody<NameListResponse>(body, DecodeNameListResponse);
}

Result<OpenStoreResponse> Client::OpenStore(const std::string& name) {
  std::string payload;
  Writer w(&payload);
  EncodeNameRequest(&w, NameRequest{name});
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kOpenStore, payload, &body));
  return DecodeBody<OpenStoreResponse>(body, DecodeOpenStoreResponse);
}

Result<PrepareResponse> Client::Prepare(const PrepareRequest& request) {
  std::string payload;
  Writer w(&payload);
  EncodePrepareRequest(&w, request);
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kPrepare, payload, &body));
  return DecodeBody<PrepareResponse>(body, DecodePrepareResponse);
}

Result<SolveReply> Client::Solve(const SolveCall& call) {
  std::string payload;
  Writer w(&payload);
  EncodeSolveCall(&w, call);
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kSolve, payload, &body));
  return DecodeBody<SolveReply>(body, DecodeSolveReply);
}

Result<SolveBatchResponse> Client::SolveBatch(const SolveBatchRequest& request) {
  std::string payload;
  Writer w(&payload);
  EncodeSolveBatchRequest(&w, request);
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kSolveBatch, payload, &body));
  return DecodeBody<SolveBatchResponse>(body, DecodeSolveBatchResponse);
}

Result<CertainAnswersReply> Client::CertainAnswers(
    const CertainAnswersCall& call) {
  std::string payload;
  Writer w(&payload);
  EncodeCertainAnswersCall(&w, call);
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kCertainAnswers, payload, &body));
  return DecodeBody<CertainAnswersReply>(body, DecodeCertainAnswersReply);
}

Result<ApplyDeltaReply> Client::ApplyDelta(const ApplyDeltaCall& call) {
  std::string payload;
  Writer w(&payload);
  EncodeApplyDeltaCall(&w, call);
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kApplyDelta, payload, &body));
  return DecodeBody<ApplyDeltaReply>(body, DecodeApplyDeltaReply);
}

Result<StatsReply> Client::Stats(const StatsCall& call) {
  std::string payload;
  Writer w(&payload);
  EncodeStatsCall(&w, call);
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kStats, payload, &body));
  return DecodeBody<StatsReply>(body, DecodeStatsReply);
}

Result<MetricsReply> Client::Metrics() {
  std::string body;
  CQA_RETURN_NOT_OK(CallRetrying(Verb::kMetrics, "", &body));
  return DecodeBody<MetricsReply>(body, DecodeMetricsReply);
}

}  // namespace net
}  // namespace cqa
