#ifndef CQA_NET_SERVER_H_
#define CQA_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/codec.h"
#include "net/metrics.h"
#include "net/wire.h"
#include "serve/service.h"
#include "util/deadline.h"
#include "util/status.h"

/// \file
/// The wire server: a poll(2)-based socket loop that speaks the
/// protocol of docs/PROTOCOL.md and multiplexes every connection's
/// requests onto one `cqa::Service`. Three thread roles:
///
///   * ONE poll thread owns every socket: it accepts connections,
///     reads bytes, splits and CRC-checks frames, applies ADMISSION
///     CONTROL, and flushes queued response bytes. It never executes a
///     request, so a slow query can never stall connection handling.
///   * A small EXECUTOR pool decodes admitted payloads, calls the
///     Service (whose session worker pools do the real row-deciding
///     fan-out), and encodes response frames. Executors never touch a
///     socket; finished frames go back to the poll thread over a wake
///     pipe. Responses therefore complete OUT OF ORDER — the request id
///     echoed in each frame is what ties them back (PROTOCOL.md §2.2).
///   * An optional `MetricsExporter` thread samples `Service::Stats`
///     into the exportable time series behind the kMetrics verb.
///
/// Admission control (PROTOCOL.md §7): a request parsed off a
/// connection that already has `max_inflight_per_connection` requests
/// executing, or while the global executor queue holds
/// `max_queued_requests` entries, is answered kUnavailable IMMEDIATELY
/// from the poll thread — shedding load instead of queueing behind a
/// backed-up SolveBatch. kUnavailable is always retry-later, never
/// failure of the request itself.
///
/// Framing errors (bad magic, bad CRC, oversized length, wrong
/// version) are connection-fatal: the server sends one terminal notice
/// frame (verb byte 0x80, request id 0) when the stream still permits
/// it, then closes.
///
/// Robustness (docs/ARCHITECTURE.md "Robustness"):
///   * DEADLINES — a request carrying the wire deadline prefix
///     (kDeadlineBit, PROTOCOL.md §2.5), tightened by the per-verb
///     default timeout, is cancelled cooperatively through the whole
///     Service pipeline and answers kDeadlineExceeded in a well-formed
///     frame (the connection stays usable).
///   * IDLE REAPING — a connection with nothing in flight that has not
///     completed a frame within `idle_timeout_ms` is closed from the
///     poll loop, so slow-loris peers (one byte per poll round) cannot
///     pin a connection slot forever.
///   * WRITE-STALL EVICTION — a peer that stops reading its responses
///     (send buffer full for `write_stall_timeout_ms`) is evicted, so
///     the poll thread's write queue cannot grow without bound.
///   * GRACEFUL DRAIN — `Shutdown(grace_ms)` stops accepting, sheds
///     queued-but-unstarted work as kUnavailable, lets in-flight
///     requests finish up to the grace period (then cancels them
///     through the deadline machinery), flushes every durable WAL, and
///     closes. Wired to SIGTERM in example_wire_server.

namespace cqa {
namespace net {

class Server {
 public:
  struct Options {
    /// Listen address. Port 0 binds an ephemeral port; read the actual
    /// one from `port()` after Start().
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Executor threads decoding + dispatching admitted requests. The
    /// heavy lifting stays on the Service's session pools; executors
    /// mostly marshal, so a handful suffices.
    int num_executors = 4;
    /// Accepted connections beyond this are closed immediately.
    size_t max_connections = 256;
    /// Per-connection in-flight budget (admitted, response not yet
    /// queued). The excess is shed with kUnavailable.
    size_t max_inflight_per_connection = 32;
    /// Global executor-queue watermark; requests arriving while the
    /// queue is this deep are shed with kUnavailable.
    size_t max_queued_requests = 256;
    /// Server-minted prepared-query handles kept alive (LRU). An
    /// evicted id answers NotFound; clients re-Prepare.
    size_t max_prepared = 1024;
    /// Default time budget applied to every request that does not
    /// carry its own wire deadline; 0 = unlimited. A wire deadline and
    /// the default compose by taking the sooner.
    uint64_t default_request_timeout_ms = 0;
    /// Per-verb default budgets overriding `default_request_timeout_ms`
    /// (key = raw Verb byte, value ms; 0 = unlimited for that verb).
    std::unordered_map<uint8_t, uint64_t> verb_timeout_ms;
    /// Close a connection with no in-flight requests and no pending
    /// output that has not COMPLETED a frame in this long (slow-loris
    /// protection; the clock starts at accept). 0 disables reaping.
    uint64_t idle_timeout_ms = 60000;
    /// Evict a connection whose pending output has made no progress in
    /// this long (the peer stopped reading). 0 disables eviction.
    uint64_t write_stall_timeout_ms = 10000;
    /// Announced in the Hello response.
    std::string server_name = "cqa";
    /// Background stats sampling (the kMetrics time series). Interval
    /// and ring capacity; `sample_metrics` false disables the thread
    /// (kMetrics then renders current counters only).
    bool sample_metrics = true;
    MetricsExporter::Options metrics;
  };

  /// Server-level counters (everything the Service cannot see),
  /// exported through kMetrics under `cqa_server_*`.
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t connections_rejected = 0;  // over max_connections
    uint64_t protocol_errors = 0;
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t shed_inflight = 0;
    uint64_t shed_queue = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    /// Requests answered kDeadlineExceeded (expired in queue or
    /// cancelled mid-execution).
    uint64_t deadline_exceeded = 0;
    /// Connections closed by idle reaping / write-stall eviction.
    uint64_t idle_reaped = 0;
    uint64_t write_stall_evicted = 0;
    /// Queued requests shed with kUnavailable by a drain.
    uint64_t drain_shed = 0;
    size_t active_connections = 0;
  };

  /// `service` must outlive the server.
  Server(Service* service, const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the poll + executor (+ metrics)
  /// threads. Fails with Unavailable when the address cannot be bound.
  Status Start();

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// Graceful drain, then Stop(). In order: stop accepting new
  /// connections, shed every queued-but-unstarted request as
  /// kUnavailable ("server draining" — blindly retryable elsewhere),
  /// wait up to `grace_ms` for in-flight requests to finish (0 = no
  /// wait), cancel stragglers through the cooperative deadline
  /// machinery, flush every durable WAL (`Service::FlushStores`), and
  /// close everything. Idempotent, and safe to call instead of Stop().
  void Shutdown(uint64_t grace_ms);

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return bound_port_; }

  Counters counters() const;

  /// The sampler behind the kMetrics verb (valid between construction
  /// and destruction; only sampling when Options::sample_metrics).
  MetricsExporter& metrics() { return exporter_; }

 private:
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::string in;   // poll thread only
    std::string out;  // poll thread only
    /// Encoded response frames from executors, drained by the poll
    /// thread; guarded by Server::mu_.
    std::deque<std::string> ready;
    /// Admitted requests whose response is not yet queued; guarded by
    /// Server::mu_.
    size_t inflight = 0;
    bool close_after_flush = false;  // terminal notice pending
    /// When the last COMPLETE frame was parsed off this connection
    /// (accept time initially) — the idle-reaping clock. Keyed on
    /// whole frames, not bytes, so a slow-loris trickle does not
    /// refresh it. Poll thread only.
    std::chrono::steady_clock::time_point last_frame;
    /// When `out` last shrank (or was empty) — the write-stall clock.
    /// Poll thread only.
    std::chrono::steady_clock::time_point last_write_progress;
  };

  struct Work {
    uint64_t conn_id = 0;
    uint8_t verb = 0;
    uint64_t request_id = 0;
    std::string payload;
    /// Effective deadline: wire prefix fused with the per-verb default,
    /// and (while draining) the grace-cutoff cancel flag.
    Deadline deadline;
  };

  void PollLoop();
  void ExecutorLoop();
  /// Parses every complete frame in `conn->in`; returns false when the
  /// connection must close (framing error).
  bool DrainFrames(const std::shared_ptr<Conn>& conn);
  /// Poll-thread half of response delivery: moves `ready` frames into
  /// the write buffer.
  void CollectReady(const std::shared_ptr<Conn>& conn);
  /// Encodes `status` + empty body into a response frame for `verb`.
  static std::string ErrorFrame(uint8_t verb, uint64_t request_id,
                                const Status& status);
  /// Executor half: full decode + Service dispatch + response encode.
  std::string DispatchFrame(uint8_t verb, uint64_t request_id,
                            const std::string& payload,
                            const Deadline& deadline);
  /// Dispatch helpers per verb; each returns the response payload
  /// (status ++ body).
  std::string HandleVerb(Verb verb, const std::string& payload,
                         const Deadline& deadline);
  /// The per-verb default budget (verb override, then the global
  /// default) as a Deadline starting now; unlimited when 0.
  Deadline VerbDefaultDeadline(uint8_t verb) const;

  /// Queues `frame` for `conn_id` and wakes the poll thread; drops the
  /// frame when the connection died in the meantime.
  void QueueResponse(uint64_t conn_id, std::string frame);
  void WakePoll();

  /// Prepared-handle registry (id -> pinned handle, LRU-capped).
  Result<PreparedQueryHandle> ResolvePrepared(const std::string& id) const;
  void RememberPrepared(const PreparedQueryHandle& handle);

  Service* service_;
  Options options_;
  MetricsExporter exporter_;

  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  uint16_t bound_port_ = 0;
  std::thread poll_thread_;
  std::vector<std::thread> executors_;
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Work> work_;
  bool stop_ = false;
  /// Draining: the poll loop stops accepting and DrainFrames sheds new
  /// requests as kUnavailable; guarded by mu_.
  bool draining_ = false;
  /// Requests currently executing (between queue pop and response
  /// queue); the drain waits on this via drain_cv_. Guarded by mu_.
  size_t executing_ = 0;
  std::condition_variable drain_cv_;
  /// Set at the drain's grace cutoff; every Work deadline carries it,
  /// so stragglers cancel cooperatively. Outlives the executors (the
  /// server owns both).
  std::atomic<bool> drain_cancel_{false};
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;
  Counters counters_;

  mutable std::mutex prepared_mu_;
  std::unordered_map<std::string, PreparedQueryHandle> prepared_;
  std::list<std::string> prepared_lru_;  // front = most recent
};

}  // namespace net
}  // namespace cqa

#endif  // CQA_NET_SERVER_H_
