#include "net/wire.h"

#include "store/record.h"  // Crc32c

namespace cqa {
namespace net {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void AppendFrame(std::string* out, uint8_t verb, uint64_t request_id,
                 std::string_view payload) {
  size_t start = out->size();
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(verb));
  PutU64(out, request_id);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
  uint32_t crc =
      store::Crc32c(out->data() + start, out->size() - start);
  PutU32(out, crc);
}

ParseResult TryParseFrame(std::string* buffer, Frame* frame,
                          std::string* error, uint8_t* bad_version) {
  if (buffer->size() < kHeaderSize) {
    // Reject a bad magic as soon as the first bytes arrive, not only
    // once a whole (possibly huge) "header" accumulated.
    if (!buffer->empty() && (*buffer)[0] != kMagic0) {
      *error = "bad frame magic";
      return ParseResult::kFatal;
    }
    if (buffer->size() >= 2 && (*buffer)[1] != kMagic1) {
      *error = "bad frame magic";
      return ParseResult::kFatal;
    }
    return ParseResult::kNeedMore;
  }
  const char* p = buffer->data();
  if (p[0] != kMagic0 || p[1] != kMagic1) {
    *error = "bad frame magic";
    return ParseResult::kFatal;
  }
  uint8_t version = static_cast<uint8_t>(p[2]);
  if (version != kProtocolVersion) {
    if (bad_version != nullptr) *bad_version = version;
    *error = "unsupported protocol version " + std::to_string(version);
    return ParseResult::kFatal;
  }
  uint32_t payload_len = GetU32(p + 12);
  if (payload_len > kMaxPayload) {
    *error = "frame payload length " + std::to_string(payload_len) +
             " exceeds limit " + std::to_string(kMaxPayload);
    return ParseResult::kFatal;
  }
  size_t total = kHeaderSize + payload_len + kTrailerSize;
  if (buffer->size() < total) return ParseResult::kNeedMore;
  uint32_t expect = GetU32(p + kHeaderSize + payload_len);
  uint32_t actual = store::Crc32c(p, kHeaderSize + payload_len);
  if (expect != actual) {
    *error = "frame checksum mismatch";
    return ParseResult::kFatal;
  }
  frame->version = version;
  frame->verb = static_cast<uint8_t>(p[3]);
  frame->request_id = GetU64(p + 4);
  frame->payload.assign(p + kHeaderSize, payload_len);
  buffer->erase(0, total);
  return ParseResult::kOk;
}

// ------------------------------------------------------------- writer

void Writer::Varint(uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_->push_back(static_cast<char>(v));
}

void Writer::Str(std::string_view s) {
  Varint(s.size());
  out_->append(s.data(), s.size());
}

// ------------------------------------------------------------- reader

uint8_t Reader::U8() {
  if (failed_ || pos_ >= data_.size()) {
    failed_ = true;
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

bool Reader::Bool() {
  uint8_t v = U8();
  if (v > 1) failed_ = true;
  return v == 1;
}

uint64_t Reader::Varint() {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    uint8_t byte = U8();
    if (failed_) return 0;
    // The 10th byte may only contribute the 64th bit.
    if (i == 9 && byte > 1) {
      failed_ = true;
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  failed_ = true;  // unterminated varint
  return 0;
}

std::string_view Reader::Str() {
  uint64_t n = Varint();
  if (failed_ || n > remaining()) {
    failed_ = true;
    return {};
  }
  std::string_view s = data_.substr(pos_, n);
  pos_ += n;
  return s;
}

Status MalformedPayload(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

}  // namespace net
}  // namespace cqa
