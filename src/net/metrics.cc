#include "net/metrics.h"

#include <sstream>
#include <utility>

#include "net/codec.h"

namespace cqa {
namespace net {

namespace {

/// "plan_cache.hits" -> "cqa_plan_cache_hits"; per-solver counters
/// ("solver.sat.calls") become labeled series
/// (`cqa_solver_calls_total{kind="sat"}`).
void RenderOne(std::ostringstream* os, const std::string& key,
               uint64_t value) {
  if (key.compare(0, 7, "solver.") == 0) {
    size_t dot = key.rfind('.');
    std::string kind = key.substr(7, dot - 7);
    std::string counter = key.substr(dot + 1);
    *os << "cqa_solver_" << counter << "_total{kind=\"" << kind << "\"} "
        << value << "\n";
    return;
  }
  std::string name = "cqa_";
  for (char c : key) name.push_back(c == '.' ? '_' : c);
  *os << "# TYPE " << name << " counter\n" << name << " " << value << "\n";
}

}  // namespace

std::string RenderPrometheus(const std::map<std::string, uint64_t>& counters,
                             const MetricGauges& extra) {
  std::ostringstream os;
  bool typed_solver = false;
  for (const auto& [key, value] : counters) {
    if (key.compare(0, 7, "solver.") == 0 && !typed_solver) {
      // One TYPE line per labeled family, not per label value.
      os << "# TYPE cqa_solver_calls_total counter\n"
         << "# TYPE cqa_solver_certain_total counter\n";
      typed_solver = true;
    }
    RenderOne(&os, key, value);
  }
  for (const auto& [key, value] : extra) {
    RenderOne(&os, key, value);
  }
  return os.str();
}

MetricsExporter::MetricsExporter(const Service* service,
                                 const Options& options)
    : service_(service),
      options_(options),
      start_(std::chrono::steady_clock::now()) {}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread(&MetricsExporter::Run, this);
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

uint64_t MetricsExporter::SampleNow() {
  // Stats() is read OUTSIDE the exporter lock — it takes the service's
  // own locks and must not serialize against Series() readers.
  Result<Service::StatsResponse> stats =
      service_->Stats(Service::StatsRequest{});
  Sample sample;
  sample.elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
  if (stats.ok()) sample.counters = FlattenStats(*stats);
  std::lock_guard<std::mutex> lock(mu_);
  sample.tick = next_tick_++;
  uint64_t tick = sample.tick;
  ring_.push_back(std::move(sample));
  while (ring_.size() > options_.capacity) ring_.pop_front();
  return tick;
}

std::vector<MetricsExporter::Sample> MetricsExporter::Series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Sample>(ring_.begin(), ring_.end());
}

uint64_t MetricsExporter::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_tick_ - 1;
}

void MetricsExporter::Run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, options_.interval, [this] { return stop_; })) {
        return;
      }
    }
    SampleNow();
  }
}

}  // namespace net
}  // namespace cqa
