#ifndef CQA_NET_METRICS_H_
#define CQA_NET_METRICS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

/// \file
/// Metrics export for the wire server. Two consumers share one source
/// of truth — `net::FlattenStats` over `Service::Stats()`, so a counter
/// can never appear under different names in different exports:
///
///   * the kMetrics wire verb (and anything else that wants plaintext)
///     renders the CURRENT counters in the Prometheus text exposition
///     format via `RenderPrometheus`;
///   * a background `MetricsExporter` thread snapshots the counters on
///     a fixed interval into a bounded in-memory ring — the exportable
///     TIME SERIES an external collector (or the load generator's
///     summary) reads via `Series()` without ever touching the serving
///     hot path.
///
/// Sampling cost is one `Service::Stats` call per interval — a handful
/// of mutex acquisitions, no session-pool work — so a 1 s interval is
/// invisible next to real traffic.

namespace cqa {
namespace net {

/// Extra process-level counters a caller can merge into the rendering
/// (the server passes its connection/request/shed counters here).
using MetricGauges = std::map<std::string, uint64_t>;

/// Renders counters as Prometheus text exposition: one
/// `# TYPE cqa_<name> counter` + `cqa_<name> <value>` pair per entry.
/// Dots in the flattened names become underscores; per-solver counters
/// become labeled series (`cqa_solver_calls_total{kind="sat"}`).
std::string RenderPrometheus(const std::map<std::string, uint64_t>& counters,
                             const MetricGauges& extra = {});

class MetricsExporter {
 public:
  struct Options {
    /// Snapshot cadence.
    std::chrono::milliseconds interval{1000};
    /// Samples retained (ring buffer; oldest dropped first).
    size_t capacity = 512;
  };

  /// One snapshot of every flattened counter, stamped with the
  /// exporter's monotone tick and milliseconds since Start().
  struct Sample {
    uint64_t tick = 0;
    int64_t elapsed_ms = 0;
    std::map<std::string, uint64_t> counters;
  };

  /// `service` must outlive the exporter.
  MetricsExporter(const Service* service, const Options& options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Spawns the sampling thread (idempotent).
  void Start();
  /// Stops and joins it (idempotent; also run by the destructor).
  void Stop();

  /// Takes one sample NOW (also what the background thread calls).
  /// Returns the sample's tick.
  uint64_t SampleNow();

  /// Copy of the retained series, oldest first.
  std::vector<Sample> Series() const;

  /// Number of samples taken since construction (monotone, not capped
  /// by the ring capacity).
  uint64_t samples_taken() const;

 private:
  void Run();

  const Service* service_;
  Options options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_ = false;
  uint64_t next_tick_ = 1;
  std::deque<Sample> ring_;
  std::thread thread_;
};

}  // namespace net
}  // namespace cqa

#endif  // CQA_NET_METRICS_H_
