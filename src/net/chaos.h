#ifndef CQA_NET_CHAOS_H_
#define CQA_NET_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

/// \file
/// A fault-injecting TCP proxy for chaos-testing the wire protocol:
/// clients connect to the proxy's port; every byte is pumped to/from
/// the real server through a gauntlet of DETERMINISTIC faults (seeded
/// mt19937 per connection, so a failing run replays exactly):
///
///   * delays      — hold a pump step for up to `max_delay_ms`;
///   * partials    — forward a prefix now, the rest next step (tests
///                   that frame parsing survives arbitrary fragmention);
///   * drops       — close BOTH sides mid-stream (a mid-frame cut: the
///                   client sees kUnavailable / a framing error, never
///                   a hang);
///   * flips       — corrupt one byte (the CRC32C trailer must catch
///                   it: the receiver answers with a terminal notice
///                   and closes — never decodes garbage).
///
/// The chaos contract (tests/net_chaos_test.cc, ISSUE 9): a retrying
/// client driving a full journey through this proxy must finish with
/// ZERO hangs or crashes, and the server's durable tenant state must
/// come out byte-identical to a clean run.

namespace cqa {
namespace net {

/// Fault probabilities are per pump step (one recv on either side).
/// All zero = a transparent proxy.
struct FaultPlan {
  uint64_t seed = 1;
  double delay_prob = 0.0;
  uint64_t max_delay_ms = 20;
  double partial_write_prob = 0.0;
  /// Ceiling on the prefix forwarded when a partial fires.
  size_t max_chunk = 7;
  double drop_prob = 0.0;
  double flip_prob = 0.0;
};

class FaultInjectingTransport {
 public:
  explicit FaultInjectingTransport(const FaultPlan& plan) : plan_(plan) {}
  ~FaultInjectingTransport() { Stop(); }

  FaultInjectingTransport(const FaultInjectingTransport&) = delete;
  FaultInjectingTransport& operator=(const FaultInjectingTransport&) = delete;

  /// Listens on an ephemeral localhost port and proxies every accepted
  /// connection to `upstream_host:upstream_port`.
  Status Start(const std::string& upstream_host, uint16_t upstream_port);
  /// The proxy's listen port (valid after Start).
  uint16_t port() const { return port_; }
  /// Closes the listener and every live proxied connection; joins all
  /// pump threads. Idempotent.
  void Stop();

  struct Counters {
    uint64_t connections = 0;
    uint64_t delays = 0;
    uint64_t partial_writes = 0;
    uint64_t drops = 0;
    uint64_t flips = 0;
  };
  Counters counters() const;

 private:
  struct ProxiedConn;
  void AcceptLoop();
  /// One direction of one connection: recv from `from`, run the fault
  /// gauntlet, forward to `to`.
  void Pump(std::shared_ptr<ProxiedConn> conn, int from, int to,
            uint64_t rng_seed);

  FaultPlan plan_;
  std::string upstream_host_;
  uint16_t upstream_port_ = 0;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ProxiedConn>> conns_;
  std::vector<std::thread> pumps_;
  Counters counters_;
  uint64_t next_conn_id_ = 1;
  bool started_ = false;
};

}  // namespace net
}  // namespace cqa

#endif  // CQA_NET_CHAOS_H_
