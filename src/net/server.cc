#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/classifier.h"
#include "util/interner.h"

namespace cqa {
namespace net {

namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal("fcntl(O_NONBLOCK) failed");
  }
  return Status::OK();
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

}  // namespace

Server::Server(Service* service, const Options& options)
    : service_(service),
      options_(options),
      exporter_(service, options.metrics) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (options_.host.empty() || options_.host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) !=
             1) {
    CloseFd(&listen_fd_);
    return Status::InvalidArgument("host is not an IPv4 address: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    CloseFd(&listen_fd_);
    return Status::Unavailable("bind() failed: " +
                               std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 128) < 0) {
    CloseFd(&listen_fd_);
    return Status::Unavailable("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    bound_port_ = ntohs(addr.sin_port);
  }
  Status st = SetNonBlocking(listen_fd_);
  if (!st.ok()) {
    CloseFd(&listen_fd_);
    return st;
  }

  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    CloseFd(&listen_fd_);
    return Status::Internal("pipe() failed");
  }
  wake_read_ = pipefd[0];
  wake_write_ = pipefd[1];
  SetNonBlocking(wake_read_);
  SetNonBlocking(wake_write_);

  stop_ = false;
  started_ = true;
  poll_thread_ = std::thread(&Server::PollLoop, this);
  int executors = std::max(1, options_.num_executors);
  executors_.reserve(executors);
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back(&Server::ExecutorLoop, this);
  }
  if (options_.sample_metrics) exporter_.Start();
  return Status::OK();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  WakePoll();
  poll_thread_.join();
  for (std::thread& t : executors_) t.join();
  executors_.clear();
  exporter_.Stop();
  CloseFd(&wake_read_);
  CloseFd(&wake_write_);
  started_ = false;
  std::lock_guard<std::mutex> lock(mu_);
  conns_.clear();
  work_.clear();
}

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Server::WakePoll() {
  char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  ssize_t ignored = ::write(wake_write_, &byte, 1);
  (void)ignored;
}

std::string Server::ErrorFrame(uint8_t verb, uint64_t request_id,
                               const Status& status) {
  std::string payload;
  Writer w(&payload);
  EncodeStatus(&w, status);
  std::string frame;
  AppendFrame(&frame, verb | kResponseBit, request_id, payload);
  return frame;
}

// ----------------------------------------------------------- poll loop

void Server::PollLoop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Conn>> polled;  // parallel to pfds[base..]
  for (;;) {
    pfds.clear();
    polled.clear();
    pfds.push_back({wake_read_, POLLIN, 0});
    bool accepting = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) break;
      // A draining server keeps the listen socket open (so peers get
      // RST-free refusals from the backlog draining out) but stops
      // polling it — no new connections are accepted.
      accepting = !draining_;
      if (accepting) pfds.push_back({listen_fd_, POLLIN, 0});
      for (auto& [id, conn] : conns_) {
        short events = POLLIN;
        // `ready` frames surface as POLLOUT interest so one poll round
        // both collects and flushes them.
        if (!conn->out.empty() || !conn->ready.empty()) events |= POLLOUT;
        pfds.push_back({conn->fd, events, 0});
        polled.push_back(conn);
      }
    }
    const size_t conn_base = accepting ? 2 : 1;

    int n = ::poll(pfds.data(), pfds.size(), 100 /* ms */);
    if (n < 0 && errno != EINTR) break;

    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_read_, buf, sizeof(buf)) > 0) {
      }
    }

    if (accepting && (pfds[1].revents & POLLIN)) {
      for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        bool reject;
        {
          std::lock_guard<std::mutex> lock(mu_);
          reject = conns_.size() >= options_.max_connections;
          if (!reject) ++counters_.connections_accepted;
          else ++counters_.connections_rejected;
        }
        if (reject) {
          ::close(fd);
          continue;
        }
        SetNonBlocking(fd);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->last_frame = std::chrono::steady_clock::now();
        conn->last_write_progress = conn->last_frame;
        std::lock_guard<std::mutex> lock(mu_);
        conn->id = next_conn_id_++;
        conns_.emplace(conn->id, conn);
        counters_.active_connections = conns_.size();
      }
    }

    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < polled.size(); ++i) {
      const pollfd& p = pfds[i + conn_base];
      const std::shared_ptr<Conn>& conn = polled[i];
      bool dead = false;

      if (p.revents & (POLLERR | POLLNVAL)) dead = true;

      if (!dead && (p.revents & (POLLIN | POLLHUP))) {
        char buf[64 * 1024];
        for (;;) {
          ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
          if (got > 0) {
            conn->in.append(buf, static_cast<size_t>(got));
            std::lock_guard<std::mutex> lock(mu_);
            counters_.bytes_read += static_cast<uint64_t>(got);
            continue;
          }
          if (got == 0) dead = true;  // peer closed
          if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != EINTR) {
            dead = true;
          }
          break;
        }
        if (!dead && !conn->close_after_flush && !DrainFrames(conn)) {
          // Framing error: flush the terminal notice, then close.
          conn->close_after_flush = true;
        }
      }

      CollectReady(conn);

      if (!conn->out.empty()) {
        ssize_t sent =
            ::send(conn->fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
        if (sent > 0) {
          conn->out.erase(0, static_cast<size_t>(sent));
          conn->last_write_progress = now;
          std::lock_guard<std::mutex> lock(mu_);
          counters_.bytes_written += static_cast<uint64_t>(sent);
        } else if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          dead = true;
        }
      }
      if (conn->out.empty()) conn->last_write_progress = now;
      if (conn->close_after_flush && conn->out.empty()) dead = true;

      // Idle reaping: nothing in flight, nothing buffered, and no
      // COMPLETE frame parsed within the idle window — a slow-loris
      // trickle of bytes does not refresh the clock.
      if (!dead && !conn->close_after_flush && options_.idle_timeout_ms > 0 &&
          conn->out.empty() &&
          now - conn->last_frame >=
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        std::lock_guard<std::mutex> lock(mu_);
        if (conn->inflight == 0 && conn->ready.empty()) {
          ++counters_.idle_reaped;
          dead = true;
        }
      }
      // Write-stall eviction: the peer stopped reading its responses,
      // so buffered output has made no progress for the whole window.
      if (!dead && options_.write_stall_timeout_ms > 0 && !conn->out.empty() &&
          now - conn->last_write_progress >=
              std::chrono::milliseconds(options_.write_stall_timeout_ms)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.write_stall_evicted;
        dead = true;
      }

      if (dead) {
        ::close(conn->fd);
        conn->fd = -1;
        std::lock_guard<std::mutex> lock(mu_);
        conns_.erase(conn->id);
        counters_.active_connections = conns_.size();
        ++counters_.connections_closed;
      }
    }
  }

  // Shutdown: close everything the poll thread owns.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  CloseFd(&listen_fd_);
}

bool Server::DrainFrames(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    Frame frame;
    std::string error;
    uint8_t bad_version = 0;
    ParseResult res = TryParseFrame(&conn->in, &frame, &error, &bad_version);
    if (res == ParseResult::kNeedMore) return true;
    if (res == ParseResult::kFatal) {
      std::string msg = bad_version != 0
                            ? "unsupported protocol version " +
                                  std::to_string(int(bad_version))
                            : "framing error: " + error;
      // Terminal notice: verb byte 0x80 (response bit, verb 0), request
      // id 0 — PROTOCOL.md §2.4. Best effort; the close is the message.
      conn->out += ErrorFrame(0, 0, Status::InvalidArgument(msg));
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.protocol_errors;
      return false;
    }

    if (frame.verb & kResponseBit) {
      // A client must never send response frames; stream is nonsense.
      conn->out += ErrorFrame(0, 0,
                              Status::InvalidArgument(
                                  "response frame received by server"));
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.protocol_errors;
      return false;
    }

    conn->last_frame = std::chrono::steady_clock::now();

    // Deadline prefix (PROTOCOL.md §2.5): kDeadlineBit on a request's
    // verb byte means the payload starts with one varint — the time
    // budget in milliseconds, relative to receipt. Responses echo the
    // STRIPPED verb; the bit never appears on a response frame.
    uint8_t verb = frame.verb;
    Deadline deadline;
    if (verb & kDeadlineBit) {
      verb = static_cast<uint8_t>(verb & ~kDeadlineBit);
      Reader prefix(frame.payload);
      uint64_t budget_ms = prefix.Varint();
      if (prefix.failed()) {
        // Request-level error, not framing: the frame itself was well
        // formed, so the connection stays usable.
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.requests;
        ++counters_.responses;
        conn->out += ErrorFrame(
            verb, frame.request_id,
            Status::InvalidArgument("malformed deadline prefix"));
        continue;
      }
      frame.payload.erase(0, frame.payload.size() - prefix.remaining());
      if (budget_ms > 0) deadline = Deadline::AfterMillis(budget_ms);
    }
    deadline = Deadline::Sooner(deadline, VerbDefaultDeadline(verb));

    // Admission control (PROTOCOL.md §7): shed BEFORE queueing, from
    // the poll thread, so overload answers fast instead of queueing
    // slow. kHello/kMetrics are control traffic and bypass the budget
    // only in the sense that they are cheap — they still count.
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
    if (draining_) {
      ++counters_.drain_shed;
      ++counters_.responses;
      conn->out += ErrorFrame(
          verb, frame.request_id,
          Status::Unavailable("server draining; retry elsewhere"));
      continue;
    }
    if (work_.size() >= options_.max_queued_requests) {
      ++counters_.shed_queue;
      ++counters_.responses;
      conn->out += ErrorFrame(
          verb, frame.request_id,
          Status::Unavailable("server overloaded (queue depth); retry"));
      continue;
    }
    if (conn->inflight >= options_.max_inflight_per_connection) {
      ++counters_.shed_inflight;
      ++counters_.responses;
      conn->out += ErrorFrame(
          verb, frame.request_id,
          Status::Unavailable("connection in-flight budget exceeded; retry"));
      continue;
    }
    ++conn->inflight;
    work_.push_back(Work{conn->id, verb, frame.request_id,
                         std::move(frame.payload), deadline});
    work_cv_.notify_one();
  }
}

void Server::CollectReady(const std::shared_ptr<Conn>& conn) {
  std::deque<std::string> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready.swap(conn->ready);
  }
  for (std::string& frame : ready) conn->out += frame;
}

void Server::QueueResponse(uint64_t conn_id, std::string frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.responses;
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;  // connection died; drop the frame
    it->second->ready.push_back(std::move(frame));
    if (it->second->inflight > 0) --it->second->inflight;
  }
  WakePoll();
}

// ------------------------------------------------------- executor loop

void Server::ExecutorLoop() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !work_.empty(); });
      if (stop_ && work_.empty()) return;
      work = std::move(work_.front());
      work_.pop_front();
      ++executing_;
    }
    // A drain's grace cutoff cancels stragglers through the same
    // cooperative checks a wire deadline uses.
    work.deadline.AttachCancel(&drain_cancel_);
    std::string frame;
    if (work.deadline.Expired()) {
      frame = ErrorFrame(
          work.verb, work.request_id,
          Status::DeadlineExceeded("deadline expired before dispatch"));
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.deadline_exceeded;
    } else {
      frame = DispatchFrame(work.verb, work.request_id, work.payload,
                            work.deadline);
    }
    QueueResponse(work.conn_id, std::move(frame));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
    }
    drain_cv_.notify_all();
  }
}

std::string Server::DispatchFrame(uint8_t verb, uint64_t request_id,
                                  const std::string& payload,
                                  const Deadline& deadline) {
  std::string response_payload =
      HandleVerb(static_cast<Verb>(verb), payload, deadline);
  // Response payloads start with the status-code byte (EncodeStatus),
  // so a cooperative cancellation deep in the Service is countable here
  // without re-decoding.
  if (!response_payload.empty() &&
      static_cast<uint8_t>(response_payload[0]) ==
          static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.deadline_exceeded;
  }
  std::string frame;
  AppendFrame(&frame, verb | kResponseBit, request_id, response_payload);
  return frame;
}

Deadline Server::VerbDefaultDeadline(uint8_t verb) const {
  auto it = options_.verb_timeout_ms.find(verb);
  uint64_t ms = it != options_.verb_timeout_ms.end()
                    ? it->second
                    : options_.default_request_timeout_ms;
  return ms == 0 ? Deadline() : Deadline::AfterMillis(ms);
}

// -------------------------------------------------------- graceful drain

void Server::Shutdown(uint64_t grace_ms) {
  std::vector<std::pair<uint64_t, std::string>> shed;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || stop_) {
      lock.unlock();
      Stop();
      return;
    }
    draining_ = true;
    // Shed queued-but-unstarted work as well-formed kUnavailable
    // responses — retryable against another replica, never half-run.
    for (Work& work : work_) {
      ++counters_.drain_shed;
      shed.emplace_back(
          work.conn_id,
          ErrorFrame(work.verb, work.request_id,
                     Status::Unavailable("server draining; retry elsewhere")));
    }
    work_.clear();
  }
  WakePoll();  // poll loop drops the listen fd from its interest set
  for (auto& [conn_id, frame] : shed) QueueResponse(conn_id, std::move(frame));

  // Let in-flight requests finish up to the grace period...
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(grace_ms),
                       [this] { return executing_ == 0 && work_.empty(); });
  }
  // ...then cancel stragglers cooperatively and wait for them to
  // unwind (their deadlines all carry this flag).
  drain_cancel_.store(true, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] { return executing_ == 0; });
  }
  // Flush every durable tenant's WAL while the responses above are
  // still draining to their sockets, then tear down.
  (void)service_->FlushStores();
  Stop();
}

// ------------------------------------------------ prepared-id registry

Result<PreparedQueryHandle> Server::ResolvePrepared(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(prepared_mu_);
  auto it = prepared_.find(id);
  if (it == prepared_.end()) {
    return Status::NotFound("unknown prepared query id (evicted or never "
                            "prepared here); re-Prepare and retry");
  }
  return it->second;
}

void Server::RememberPrepared(const PreparedQueryHandle& handle) {
  std::lock_guard<std::mutex> lock(prepared_mu_);
  const std::string& id = handle->id();
  auto it = prepared_.find(id);
  if (it != prepared_.end()) {
    prepared_lru_.remove(id);
    prepared_lru_.push_front(id);
    return;
  }
  prepared_.emplace(id, handle);
  prepared_lru_.push_front(id);
  while (prepared_.size() > options_.max_prepared) {
    prepared_.erase(prepared_lru_.back());
    prepared_lru_.pop_back();
  }
}

// ------------------------------------------------------- verb handlers

namespace {

/// Every handler writes `status ++ [body iff ok]` (PROTOCOL.md §2.2).
std::string StatusOnly(const Status& status) {
  std::string payload;
  Writer w(&payload);
  EncodeStatus(&w, status);
  return payload;
}

std::vector<SymbolId> InternAll(const std::vector<std::string>& names) {
  std::vector<SymbolId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) ids.push_back(InternSymbol(name));
  return ids;
}

SolveReply MakeSolveReply(const Service::SolveResponse& response) {
  SolveReply reply;
  reply.certain = response.outcome.certain;
  reply.solver_kind = ToString(response.outcome.solver);
  reply.epoch = response.epoch;
  return reply;
}

}  // namespace

std::string Server::HandleVerb(Verb verb, const std::string& payload,
                               const Deadline& deadline) {
  Reader r(payload);
  switch (verb) {
    case Verb::kHello: {
      Result<HelloRequest> req = DecodeHelloRequest(&r);
      if (!req.ok()) return StatusOnly(req.status());
      if (req->min_version > kProtocolVersion ||
          req->max_version < kProtocolVersion) {
        return StatusOnly(Status::InvalidArgument(
            "no common protocol version (server speaks " +
            std::to_string(int(kProtocolVersion)) + ")"));
      }
      HelloResponse resp;
      resp.version = kProtocolVersion;
      resp.server_name = options_.server_name;
      resp.max_payload = kMaxPayload;
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeHelloResponse(&w, resp);
      return out;
    }

    case Verb::kCreateDatabase: {
      Result<CreateDatabaseRequest> req = DecodeCreateDatabaseRequest(&r);
      if (!req.ok()) return StatusOnly(req.status());
      return StatusOnly(
          service_->CreateDatabase(req->name, std::move(req->db)));
    }

    case Verb::kDropDatabase: {
      Result<NameRequest> req = DecodeNameRequest(&r);
      if (!req.ok()) return StatusOnly(req.status());
      return StatusOnly(service_->DropDatabase(req->name));
    }

    case Verb::kListDatabases:
    case Verb::kListStores: {
      // Both carry an empty request payload.
      if (!r.done()) return StatusOnly(MalformedPayload("list request"));
      NameListResponse resp;
      resp.names = verb == Verb::kListDatabases ? service_->ListDatabases()
                                                : service_->ListStores();
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeNameListResponse(&w, resp);
      return out;
    }

    case Verb::kOpenStore: {
      Result<NameRequest> req = DecodeNameRequest(&r);
      if (!req.ok()) return StatusOnly(req.status());
      Result<Service::OpenStoreResponse> opened =
          service_->OpenStore(req->name);
      if (!opened.ok()) return StatusOnly(opened.status());
      OpenStoreResponse resp;
      resp.epoch = opened->epoch;
      resp.replayed = opened->replayed;
      resp.torn_tail_recovered = opened->torn_tail_recovered;
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeOpenStoreResponse(&w, resp);
      return out;
    }

    case Verb::kPrepare: {
      Result<PrepareRequest> req = DecodePrepareRequest(&r);
      if (!req.ok()) return StatusOnly(req.status());
      Service::PrepareOptions popts;
      if (!req->force_solver.empty()) {
        std::optional<SolverKind> kind =
            SolverKindFromString(req->force_solver);
        if (!kind) {
          return StatusOnly(Status::InvalidArgument("unknown solver: " +
                                                    req->force_solver));
        }
        popts.force_solver = *kind;
      }
      Result<PreparedQueryHandle> handle = service_->Prepare(
          req->query, InternAll(req->free_vars), popts);
      if (!handle.ok()) return StatusOnly(handle.status());
      RememberPrepared(*handle);
      PrepareResponse resp;
      resp.prepared_id = (*handle)->id();
      resp.solver_kind = ToString((*handle)->solver_kind());
      resp.complexity = ComplexityClassName((*handle)->complexity());
      resp.parameterized = (*handle)->parameterized();
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodePrepareResponse(&w, resp);
      return out;
    }

    case Verb::kSolve: {
      Result<SolveCall> call = DecodeSolveCall(&r);
      if (!call.ok()) return StatusOnly(call.status());
      Service::SolveRequest sreq;
      sreq.database = call->database;
      if (!call->prepared_id.empty()) {
        Result<PreparedQueryHandle> handle =
            ResolvePrepared(call->prepared_id);
        if (!handle.ok()) return StatusOnly(handle.status());
        sreq.prepared = *handle;
      }
      sreq.query = std::move(call->query);
      sreq.deadline = deadline;
      Result<Service::SolveResponse> resp = service_->Solve(sreq);
      if (!resp.ok()) return StatusOnly(resp.status());
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeSolveReply(&w, MakeSolveReply(*resp));
      return out;
    }

    case Verb::kSolveBatch: {
      Result<SolveBatchRequest> req = DecodeSolveBatchRequest(&r);
      if (!req.ok()) return StatusOnly(req.status());
      std::vector<Service::SolveRequest> sreqs;
      sreqs.reserve(req->calls.size());
      // Handle resolution failures must stay positional, so a bad id
      // becomes a poisoned entry (unknown database forces the per-item
      // error from the Service) — resolved statuses override below.
      std::vector<Status> resolve_errors(req->calls.size());
      for (size_t i = 0; i < req->calls.size(); ++i) {
        SolveCall& call = req->calls[i];
        Service::SolveRequest sreq;
        sreq.database = call.database;
        if (!call.prepared_id.empty()) {
          Result<PreparedQueryHandle> handle =
              ResolvePrepared(call.prepared_id);
          if (handle.ok()) {
            sreq.prepared = *handle;
          } else {
            resolve_errors[i] = handle.status();
          }
        }
        sreq.query = std::move(call.query);
        sreq.deadline = deadline;
        sreqs.push_back(std::move(sreq));
      }
      std::vector<Result<Service::SolveResponse>> results =
          service_->SolveBatch(sreqs);
      SolveBatchResponse resp;
      resp.items.reserve(results.size());
      for (size_t i = 0; i < results.size(); ++i) {
        if (!resolve_errors[i].ok()) {
          resp.items.emplace_back(resolve_errors[i], SolveReply{});
        } else if (!results[i].ok()) {
          resp.items.emplace_back(results[i].status(), SolveReply{});
        } else {
          resp.items.emplace_back(Status::OK(), MakeSolveReply(*results[i]));
        }
      }
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeSolveBatchResponse(&w, resp);
      return out;
    }

    case Verb::kCertainAnswers: {
      Result<CertainAnswersCall> call = DecodeCertainAnswersCall(&r);
      if (!call.ok()) return StatusOnly(call.status());
      Service::CertainAnswersRequest creq;
      creq.database = call->database;
      if (!call->prepared_id.empty()) {
        Result<PreparedQueryHandle> handle =
            ResolvePrepared(call->prepared_id);
        if (!handle.ok()) return StatusOnly(handle.status());
        creq.prepared = *handle;
      }
      creq.query = std::move(call->query);
      creq.free_vars = InternAll(call->free_vars);
      creq.page_size = static_cast<size_t>(call->page_size);
      creq.page_token = std::move(call->page_token);
      creq.deadline = deadline;
      Result<Service::CertainAnswersResponse> resp =
          service_->CertainAnswers(creq);
      if (!resp.ok()) return StatusOnly(resp.status());
      CertainAnswersReply reply;
      reply.rows = std::move(resp->rows);
      reply.next_page_token = std::move(resp->next_page_token);
      reply.total_rows = resp->total_rows;
      reply.epoch = resp->epoch;
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeCertainAnswersReply(&w, reply);
      return out;
    }

    case Verb::kApplyDelta: {
      Result<ApplyDeltaCall> call = DecodeApplyDeltaCall(&r);
      if (!call.ok()) return StatusOnly(call.status());
      Service::DeltaRequest dreq;
      dreq.database = call->database;
      dreq.delta = std::move(call->delta);
      dreq.deadline = deadline;
      Result<Service::DeltaResponse> resp = service_->ApplyDelta(dreq);
      if (!resp.ok()) return StatusOnly(resp.status());
      ApplyDeltaReply reply;
      reply.epoch = resp->epoch;
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeApplyDeltaReply(&w, reply);
      return out;
    }

    case Verb::kStats: {
      Result<StatsCall> call = DecodeStatsCall(&r);
      if (!call.ok()) return StatusOnly(call.status());
      Service::StatsRequest sreq;
      sreq.database = call->database;
      Result<Service::StatsResponse> resp = service_->Stats(sreq);
      if (!resp.ok()) return StatusOnly(resp.status());
      StatsReply reply;
      reply.counters = FlattenStats(*resp);
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeStatsReply(&w, reply);
      return out;
    }

    case Verb::kMetrics: {
      if (!r.done()) return StatusOnly(MalformedPayload("metrics request"));
      Result<Service::StatsResponse> stats =
          service_->Stats(Service::StatsRequest{});
      MetricsReply reply;
      MetricGauges extra;
      {
        Counters c = counters();
        extra["server.connections_accepted"] = c.connections_accepted;
        extra["server.connections_active"] = c.active_connections;
        extra["server.connections_closed"] = c.connections_closed;
        extra["server.connections_rejected"] = c.connections_rejected;
        extra["server.protocol_errors"] = c.protocol_errors;
        extra["server.requests_total"] = c.requests;
        extra["server.responses_total"] = c.responses;
        extra["server.shed_inflight"] = c.shed_inflight;
        extra["server.shed_queue"] = c.shed_queue;
        extra["server.bytes_read"] = c.bytes_read;
        extra["server.bytes_written"] = c.bytes_written;
        extra["server.deadline_exceeded_total"] = c.deadline_exceeded;
        extra["server.idle_reaped_total"] = c.idle_reaped;
        extra["server.write_stall_evicted_total"] = c.write_stall_evicted;
        extra["server.drain_shed_total"] = c.drain_shed;
        extra["server.metrics_samples"] = exporter_.samples_taken();
      }
      reply.text = RenderPrometheus(
          stats.ok() ? FlattenStats(*stats) : std::map<std::string, uint64_t>{},
          extra);
      std::string out;
      Writer w(&out);
      EncodeStatus(&w, Status::OK());
      EncodeMetricsReply(&w, reply);
      return out;
    }
  }
  return StatusOnly(Status::InvalidArgument(
      "unknown verb " + std::to_string(int(static_cast<uint8_t>(verb)))));
}

}  // namespace net
}  // namespace cqa
