#ifndef CQA_NET_WIRE_H_
#define CQA_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

/// \file
/// The v1 wire frame and its payload primitives — the bottom half of
/// the binary protocol that takes `cqa::Service` over a socket. The
/// NORMATIVE specification is docs/PROTOCOL.md; this header implements
/// it and must never silently diverge from it.
///
/// A frame is a fixed 16-byte header, a bounded payload, and a trailing
/// CRC32C over everything before it:
///
///   offset size  field
///   0      2     magic "cq" (0x63 0x71)
///   2      1     protocol version (kProtocolVersion = 1)
///   3      1     verb (request) or verb|0x80 (response)
///   4      8     request id, u64 little-endian (echoed in the response)
///   12     4     payload length, u32 little-endian (<= kMaxPayload)
///   16     n     payload
///   16+n   4     CRC32C over bytes [0, 16+n), u32 little-endian
///
/// Framing errors (bad magic, unsupported version, oversized length,
/// checksum mismatch) are CONNECTION-FATAL: the stream can no longer be
/// trusted, so the peer closes it. Request-level errors (unknown verb,
/// malformed payload, any Service error) travel inside a well-formed
/// response frame and leave the connection usable.
///
/// Payload primitives (all integers beyond the header are varints):
///   varint  unsigned LEB128, at most 10 bytes, canonical 64-bit range
///   string  varint byte length + raw bytes (no terminator, any bytes)
///   bool    one byte, 0 or 1
///
/// Symbols always travel as strings — interner ids are process-local
/// and never cross the wire (the same rule store/record.h applies to
/// durable state).

namespace cqa {
namespace net {

/// The protocol version this build speaks. Frames carrying any other
/// version are refused (see docs/PROTOCOL.md §2.3 for the negotiation
/// rules a multi-version server would follow).
constexpr uint8_t kProtocolVersion = 1;

constexpr char kMagic0 = 'c';
constexpr char kMagic1 = 'q';
constexpr size_t kHeaderSize = 16;
constexpr size_t kTrailerSize = 4;  // CRC32C
/// Hard payload bound; a length field above it is a framing error
/// before any allocation happens (hostile lengths cannot balloon
/// memory).
constexpr uint32_t kMaxPayload = 16u << 20;

/// Request verbs of protocol v1. Values are wire-stable: new verbs
/// append, old ones never renumber (docs/PROTOCOL.md §4).
enum class Verb : uint8_t {
  kHello = 1,
  kCreateDatabase = 2,
  kDropDatabase = 3,
  kListDatabases = 4,
  kOpenStore = 5,
  kListStores = 6,
  kPrepare = 7,
  kSolve = 8,
  kSolveBatch = 9,
  kCertainAnswers = 10,
  kApplyDelta = 11,
  kStats = 12,
  kMetrics = 13,
};

/// Bit set on the verb byte of every response frame.
constexpr uint8_t kResponseBit = 0x80;

/// Bit set on the verb byte of a REQUEST frame that carries a deadline
/// (protocol v1.1, docs/PROTOCOL.md §2.5): the payload then begins with
/// one varint — the request's time budget in milliseconds, relative to
/// receipt — followed by the verb's normal payload. Responses never
/// carry this bit (the verb byte they echo is the stripped one), and a
/// v1.0 frame (bit clear) is unchanged, so the extension is
/// wire-compatible in both directions.
constexpr uint8_t kDeadlineBit = 0x40;

/// A parsed frame header + payload, as handed to the dispatch layer.
struct Frame {
  uint8_t version = kProtocolVersion;
  uint8_t verb = 0;  // raw byte; may carry kResponseBit
  uint64_t request_id = 0;
  std::string payload;
};

/// Serializes a complete frame (header, payload, CRC) onto `out`.
void AppendFrame(std::string* out, uint8_t verb, uint64_t request_id,
                 std::string_view payload);

/// Outcome of TryParseFrame over a byte stream prefix.
enum class ParseResult {
  /// A complete, checksum-valid frame was consumed.
  kOk,
  /// The buffer holds a valid prefix; read more bytes and retry.
  kNeedMore,
  /// The stream is corrupt (magic/version/length/CRC); close it.
  kFatal,
};

/// Attempts to parse one frame from the front of `buffer`. On kOk the
/// frame's bytes are consumed from `buffer` and `*frame` is filled; on
/// kNeedMore nothing is consumed; on kFatal `*error` names the
/// violation and the connection must be closed. A version other than
/// kProtocolVersion is kFatal with `*bad_version` set (when non-null),
/// so the server can still send a closing error response the client
/// understands structurally.
ParseResult TryParseFrame(std::string* buffer, Frame* frame,
                          std::string* error,
                          uint8_t* bad_version = nullptr);

// ------------------------------------------------------ payload writer

/// Append-only payload builder implementing the primitive encodings.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// Unsigned LEB128.
  void Varint(uint64_t v);
  /// varint length + raw bytes.
  void Str(std::string_view s);

 private:
  std::string* out_;
};

// ------------------------------------------------------ payload reader

/// Bounds-checked cursor over one payload. Every getter fails soft: the
/// first out-of-bounds or malformed read latches `failed()` and further
/// reads return zero values, so decoders can run straight-line and
/// check once at the end — hostile payloads can never read out of
/// bounds or loop on a bad varint.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  uint8_t U8();
  bool Bool();
  uint64_t Varint();
  /// Validates the length against the remaining bytes BEFORE exposing
  /// it, so a hostile length cannot drive an allocation.
  std::string_view Str();

  bool failed() const { return failed_; }
  /// True iff every byte was consumed and nothing failed — decoders
  /// require this so trailing garbage is an error, not a skew.
  bool done() const { return !failed_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  /// Latches failure from a semantic check (e.g. an unknown enum tag).
  void Fail() { failed_ = true; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// The uniform error for any payload that fails to decode.
Status MalformedPayload(const char* what);

}  // namespace net
}  // namespace cqa

#endif  // CQA_NET_WIRE_H_
