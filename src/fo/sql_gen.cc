#include "fo/sql_gen.h"

#include <map>
#include <sstream>
#include <vector>

#include "fo/rewriter.h"

namespace cqa {

namespace {

/// Variable -> SQL column expression ("t3.c2") for the current scope.
using Scope = std::map<SymbolId, std::string>;

/// Table reference for a relation symbol: its (hostile-name safe)
/// quoted identifier.
std::string TableRef(SymbolId relation) {
  return QuoteSqlIdentifier(SymbolName(relation));
}

std::string SqlLiteral(SymbolId constant) {
  // Standard SQL string literal; single quotes doubled.
  std::string out = "'";
  for (char c : SymbolName(constant)) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

struct SqlGen {
  int next_alias = 0;
  Status error = Status::OK();

  std::string TermExpr(const Term& t, const Scope& scope) {
    if (t.is_const()) return SqlLiteral(t.id());
    auto it = scope.find(t.id());
    if (it == scope.end()) {
      error = Status::Internal("unbound variable " + SymbolName(t.id()) +
                               " in formula-to-SQL translation");
      return "NULL";
    }
    return it->second;
  }

  /// Emits the FROM alias and WHERE constraints for matching `atom`,
  /// extending `scope` with newly bound variables.
  std::string GuardConstraints(const Atom& atom, const std::string& alias,
                               Scope* scope) {
    std::vector<std::string> conds;
    for (int i = 0; i < atom.arity(); ++i) {
      std::string column = alias + ".c" + std::to_string(i + 1);
      const Term& t = atom.terms()[i];
      if (t.is_const()) {
        conds.push_back(column + " = " + SqlLiteral(t.id()));
      } else {
        auto it = scope->find(t.id());
        if (it == scope->end()) {
          scope->emplace(t.id(), column);
        } else {
          conds.push_back(column + " = " + it->second);
        }
      }
    }
    if (conds.empty()) return "TRUE";
    std::string out = conds[0];
    for (size_t i = 1; i < conds.size(); ++i) out += " AND " + conds[i];
    return out;
  }

  std::string Translate(const Formula& f, Scope scope) {
    switch (f.kind()) {
      case Formula::Kind::kTrue:
        return "TRUE";
      case Formula::Kind::kFalse:
        return "FALSE";
      case Formula::Kind::kEquals:
        return "(" + TermExpr(f.lhs(), scope) + " = " +
               TermExpr(f.rhs(), scope) + ")";
      case Formula::Kind::kNot:
        return "(NOT " + Translate(*f.children()[0], scope) + ")";
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        std::string joiner =
            f.kind() == Formula::Kind::kAnd ? " AND " : " OR ";
        std::string out = "(";
        for (size_t i = 0; i < f.children().size(); ++i) {
          if (i > 0) out += joiner;
          out += Translate(*f.children()[i], scope);
        }
        return out + ")";
      }
      case Formula::Kind::kAtom: {
        // Membership test: EXISTS over the relation with all positions
        // pinned.
        std::string alias = "t" + std::to_string(next_alias++);
        Scope inner = scope;
        std::string conds = GuardConstraints(f.atom(), alias, &inner);
        return "EXISTS (SELECT 1 FROM " + TableRef(f.atom().relation()) +
               " AS " + alias + " WHERE " + conds + ")";
      }
      case Formula::Kind::kExistsGuard: {
        std::string alias = "t" + std::to_string(next_alias++);
        Scope inner = scope;
        std::string conds = GuardConstraints(f.atom(), alias, &inner);
        std::string child = Translate(*f.children()[0], inner);
        return "EXISTS (SELECT 1 FROM " + TableRef(f.atom().relation()) +
               " AS " + alias + " WHERE " + conds + " AND " + child + ")";
      }
      case Formula::Kind::kForallGuard: {
        std::string alias = "t" + std::to_string(next_alias++);
        Scope inner = scope;
        std::string conds = GuardConstraints(f.atom(), alias, &inner);
        std::string child = Translate(*f.children()[0], inner);
        return "NOT EXISTS (SELECT 1 FROM " + TableRef(f.atom().relation()) +
               " AS " + alias + " WHERE " + conds + " AND NOT (" + child +
               "))";
      }
      case Formula::Kind::kExistsDom:
      case Formula::Kind::kForallDom:
        error = Status::Unsupported(
            "active-domain quantifiers have no direct SQL form");
        return "FALSE";
    }
    return "FALSE";
  }
};

}  // namespace

std::string QuoteSqlIdentifier(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

Result<std::string> FormulaToSql(const FormulaPtr& formula) {
  SqlGen gen;
  std::string sql = gen.Translate(*formula, Scope());
  if (!gen.error.ok()) return gen.error;
  return sql;
}

Result<std::string> CertainSqlRewriting(const Query& q) {
  Result<FormulaPtr> rewriting = CertainRewriting(q);
  if (!rewriting.ok()) return rewriting.status();
  Result<std::string> condition = FormulaToSql(*rewriting);
  if (!condition.ok()) return condition.status();
  return "SELECT " + *condition + ";";
}

}  // namespace cqa
