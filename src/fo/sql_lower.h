#ifndef CQA_FO_SQL_LOWER_H_
#define CQA_FO_SQL_LOWER_H_

#include <string>
#include <vector>

#include "cq/canonicalize.h"
#include "fo/program.h"
#include "util/status.h"

/// \file
/// SQL lowering of compiled FO plans — the execution-grade twin of
/// fo/sql_gen.h. The pretty-printer walks the Formula AST and renders
/// symbol *names*; this lowering walks the flat physical `FoProgram`
/// (one correlated EXISTS / NOT EXISTS subquery per semijoin / antijoin
/// op) and renders a statement an embedded RDBMS executes over a table
/// mirror that stores interned `SymbolId`s as INTEGER columns:
///
///   * relation R of arity n is a table `QuoteSqlIdentifier(name)` with
///     INTEGER columns c1..cn (key positions first), PRIMARY KEY over
///     all columns (facts are a set) — the clustered PK doubles as the
///     key-prefix index `FactIndex` probes;
///   * integer storage makes `ORDER BY c1, c2, ...` coincide exactly
///     with the lexicographic `std::vector<SymbolId>` order the
///     in-memory `RowSet` is sorted by, so a pushed-down answer set is
///     byte-identical to the in-memory one, row for row and in order;
///   * the program's parameters occupy registers 0..k-1; each call
///     chooses what they render to — `?1..?k` placeholders for the
///     per-row decision statement, outer candidate columns for the
///     one-shot certain-answers query.
///
/// Programs containing domain-quantifier ops (kExistsDom / kForallDom)
/// have no direct SQL form and fail Unsupported; certain rewritings
/// never produce them, so every FO-rewritable plan lowers.

namespace cqa {

/// The table identifier (already quoted) mirroring `relation`.
std::string SqlTableName(SymbolId relation);

/// Column identifier of 0-based position `pos`: c1..cn.
std::string SqlColumnName(int pos);

/// Lowers the program's root condition to one SQL boolean expression.
/// `param_exprs` renders register i (one entry per program parameter):
/// positional placeholders ("?1") for a prepared per-row statement,
/// column expressions ("cand.p1") for a correlated outer query.
Result<std::string> LowerProgramCondition(
    const FoProgram& program, const std::vector<std::string>& param_exprs);

/// `SELECT <condition>` with placeholders ?1..?k — the prepared
/// statement a row batch binds against, one row per execution.
Result<std::string> RowDecisionSql(const FoProgram& program);

/// Candidate enumeration of the canonical query: the distinct
/// projections of its embeddings onto the parameters, one output column
/// pI per parameter. Exactly `CollectProjectionsSorted` as SQL (without
/// the ORDER BY — callers append it or wrap the query). Boolean
/// canonicalizations (no parameters) are rejected; use
/// `BooleanCertainSql`.
Result<std::string> CandidateSelectSql(const CanonicalQuery& canonical);

/// The whole certain-answer set in ONE statement: candidates (inner
/// DISTINCT subquery) filtered by the correlated rewriting condition,
/// ordered lexicographically. No placeholders.
Result<std::string> CertainAnswersSql(const CanonicalQuery& canonical,
                                      const FoProgram& program);

/// `CertainAnswersSql` + ` LIMIT ?1 OFFSET ?2` — the page statement a
/// SQL cursor binds per fetch over one held read transaction.
Result<std::string> CertainAnswersPageSql(const CanonicalQuery& canonical,
                                          const FoProgram& program);

/// `SELECT COUNT(*)` over the certain-answer set (a cursor's
/// total_rows).
Result<std::string> CertainAnswersCountSql(const CanonicalQuery& canonical,
                                           const FoProgram& program);

/// Boolean serving semantics of ComputeCertainFull in one statement:
/// `SELECT (possible) AND (certain)` where `possible` is an EXISTS over
/// the canonical query's joins and `certain` is the lowered rewriting.
/// Returns exactly one row with one 0/1 column.
Result<std::string> BooleanCertainSql(const CanonicalQuery& canonical,
                                      const FoProgram& program);

/// `SELECT <certain>` alone — the pushdown of `QueryPlan::Solve` (no
/// possibility conjunct, mirroring the plan-level Boolean solve).
Result<std::string> BooleanSolveSql(const FoProgram& program);

/// Index DDL statements (CREATE INDEX IF NOT EXISTS ...) suggested by
/// the program's probe positions: single-column indexes for statically
/// bound positions outside the clustered key prefix, mirroring the
/// single-position buckets `FactIndex` builds. The PK already covers
/// key-prefix probes.
Result<std::vector<std::string>> ProgramIndexDdl(const FoProgram& program);

}  // namespace cqa

#endif  // CQA_FO_SQL_LOWER_H_
