#ifndef CQA_FO_EVALUATOR_H_
#define CQA_FO_EVALUATOR_H_

#include <vector>

#include "cq/matcher.h"
#include "cq/valuation.h"
#include "db/database.h"
#include "fo/formula.h"

/// \file
/// Evaluation of FO formulas over an uncertain database, with active-
/// domain semantics for the unguarded quantifiers. Guarded quantifiers
/// iterate only over facts of the guard's relation, which keeps the
/// certain rewritings produced by `CertainRewriting` polynomial to
/// evaluate.

namespace cqa {

class FormulaEvaluator {
 public:
  explicit FormulaEvaluator(const Database& db);

  /// Evaluates a sentence (no free variables outside `binding`).
  bool Eval(const FormulaPtr& formula) const;

  /// Evaluates under an initial binding (free variables allowed when
  /// bound here).
  bool Eval(const FormulaPtr& formula, const Valuation& binding) const;

 private:
  bool EvalRec(const Formula& f, Valuation* binding) const;

  FactIndex index_;
  std::vector<SymbolId> adom_;
};

}  // namespace cqa

#endif  // CQA_FO_EVALUATOR_H_
