#ifndef CQA_FO_EVALUATOR_H_
#define CQA_FO_EVALUATOR_H_

#include <optional>
#include <vector>

#include "cq/matcher.h"
#include "cq/valuation.h"
#include "db/database.h"
#include "fo/formula.h"

/// \file
/// Evaluation of FO formulas over an uncertain database, with active-
/// domain semantics for the unguarded quantifiers. Guarded quantifiers
/// iterate only over facts of the guard's relation, which keeps the
/// certain rewritings produced by `CertainRewriting` polynomial to
/// evaluate.

namespace cqa {

class FormulaEvaluator {
 public:
  /// Owning constructor: builds a private index and the active domain
  /// from `db`.
  explicit FormulaEvaluator(const Database& db);

  /// Borrowing constructor for long-lived serving contexts: evaluates
  /// over an externally owned index (which the owner keeps current
  /// across database deltas) with an explicit active domain. `index`
  /// must outlive the evaluator.
  FormulaEvaluator(const FactIndex* index, std::vector<SymbolId> adom);

  /// Replaces the active domain — the owner of a borrowed index calls
  /// this after a delta changed the set of occurring constants (the
  /// unguarded quantifiers range over adom, and rewritings contain
  /// negation, so a stale superset is not sound).
  void SetActiveDomain(std::vector<SymbolId> adom) {
    adom_ = std::move(adom);
  }

  /// The active domain the unguarded quantifiers range over. The
  /// set-at-a-time program executor reads it from here so both execution
  /// modes always see the same (session-maintained) domain.
  const std::vector<SymbolId>& adom() const { return adom_; }

  /// Evaluates a sentence (no free variables outside `binding`).
  bool Eval(const FormulaPtr& formula) const;

  /// Evaluates under an initial binding (free variables allowed when
  /// bound here).
  bool Eval(const FormulaPtr& formula, const Valuation& binding) const;

 private:
  bool EvalRec(const Formula& f, Valuation* binding) const;

  /// Set only by the owning constructor; `index_` points at it or at
  /// the borrowed external index.
  std::optional<FactIndex> owned_index_;
  const FactIndex* index_;
  std::vector<SymbolId> adom_;
};

}  // namespace cqa

#endif  // CQA_FO_EVALUATOR_H_
