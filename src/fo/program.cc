#include "fo/program.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <unordered_map>

namespace cqa {

// --------------------------------------------------------------- mode

namespace {

FoExecMode InitialExecMode() {
  const char* interp = std::getenv("CQA_FO_INTERPRETER");
  return interp != nullptr && *interp != '\0' && *interp != '0'
             ? FoExecMode::kInterpreter
             : FoExecMode::kProgram;
}

// Atomic so concurrent serving workers can read the mode while a test
// harness flips it between phases (mirrors DefaultMatcherMode).
std::atomic<FoExecMode>& ExecModeSingleton() {
  static std::atomic<FoExecMode> mode{InitialExecMode()};
  return mode;
}

}  // namespace

FoExecMode DefaultFoExecMode() {
  return ExecModeSingleton().load(std::memory_order_relaxed);
}
void SetDefaultFoExecMode(FoExecMode mode) {
  ExecModeSingleton().store(mode, std::memory_order_relaxed);
}

// ----------------------------------------------------------- lowering

namespace {

using Op = FoProgram::Op;
using Slot = FoProgram::Slot;

/// Recursive lowering state: the op buffer under construction plus the
/// static binding environment (variable -> register). The environment
/// mirrors exactly what the interpreter's Valuation would contain at
/// each node, so "statically bound" and "bound at evaluation time"
/// coincide on well-scoped formulas.
class Lowerer {
 public:
  Lowerer(std::vector<Op>* ops, int first_free_reg)
      : ops_(ops), next_reg_(first_free_reg) {}

  std::unordered_map<SymbolId, int>& env() { return env_; }
  int width() const { return next_reg_; }
  bool needs_adom() const { return needs_adom_; }

  Result<int> Lower(const Formula& f);

 private:
  Result<Slot> ReadTerm(const Term& t) const {
    Slot s;
    if (t.is_const()) {
      s.is_const = true;
      s.value = t.id();
      return s;
    }
    auto it = env_.find(t.id());
    if (it == env_.end()) {
      return Status::InvalidArgument(
          "formula reads unbound variable '" + SymbolName(t.id()) +
          "' (not quantified and not a program parameter)");
    }
    s.reg = it->second;
    return s;
  }

  Result<int> LowerGuard(const Formula& f, Op::Kind kind);
  Result<int> LowerDom(const Formula& f, Op::Kind kind);

  int Emit(Op op) {
    ops_->push_back(std::move(op));
    return static_cast<int>(ops_->size()) - 1;
  }

  std::vector<Op>* ops_;
  std::unordered_map<SymbolId, int> env_;
  int next_reg_;
  bool needs_adom_ = false;
};

Result<int> Lowerer::LowerGuard(const Formula& f, Op::Kind kind) {
  const Atom& a = f.atom();
  Op op;
  op.kind = kind;
  op.relation = a.relation();
  op.key_arity = a.key_arity();
  op.slots.reserve(a.arity());
  std::vector<SymbolId> fresh;  // variables this guard binds.
  // A position can seed an index probe only when its value is known
  // BEFORE the guard runs: a constant, or a register bound by an outer
  // scope. A check slot whose register this same atom binds at an
  // earlier position (repeated variable, e.g. R(x | x)) is verified by
  // MatchBind but cannot be probed.
  std::vector<bool> probeable;
  for (const Term& t : a.terms()) {
    Slot s;
    bool can_probe = false;
    if (t.is_const()) {
      s.is_const = true;
      s.value = t.id();
      can_probe = true;
    } else if (auto it = env_.find(t.id()); it != env_.end()) {
      s.reg = it->second;  // Bound: the position is a check.
      can_probe = std::find(fresh.begin(), fresh.end(), t.id()) ==
                  fresh.end();
    } else {
      s.reg = next_reg_++;
      s.bind = true;
      env_.emplace(t.id(), s.reg);
      fresh.push_back(t.id());
    }
    op.slots.push_back(s);
    probeable.push_back(can_probe);
  }
  // Probe plan: a run of >= 2 probeable leading positions is one
  // key-prefix bucket (a length-1 prefix is the position-0 bucket); all
  // probeable positions stay candidates for single-position buckets,
  // and the executor picks the smallest at run time.
  int leading = 0;
  while (leading < a.arity() && probeable[leading]) ++leading;
  op.prefix_len = leading >= 2 ? leading : 0;
  for (int i = 0; i < a.arity(); ++i) {
    if (probeable[i]) op.probe_positions.push_back(i);
  }

  Result<int> child = Lower(*f.children()[0]);
  for (SymbolId v : fresh) env_.erase(v);
  if (!child.ok()) return child.status();
  op.child = *child;
  return Emit(std::move(op));
}

Result<int> Lowerer::LowerDom(const Formula& f, Op::Kind kind) {
  needs_adom_ = true;
  Op op;
  op.kind = kind;
  op.reg = next_reg_++;
  // Domain quantifiers shadow an existing binding (the interpreter
  // rebinds the variable), unlike guards which treat it as a check.
  auto it = env_.find(f.var());
  std::optional<int> shadowed;
  if (it != env_.end()) {
    shadowed = it->second;
    it->second = op.reg;
  } else {
    env_.emplace(f.var(), op.reg);
  }
  Result<int> child = Lower(*f.children()[0]);
  if (shadowed.has_value()) {
    env_[f.var()] = *shadowed;
  } else {
    env_.erase(f.var());
  }
  if (!child.ok()) return child.status();
  op.child = *child;
  return Emit(std::move(op));
}

Result<int> Lowerer::Lower(const Formula& f) {
  switch (f.kind()) {
    case Formula::Kind::kTrue: {
      Op op;
      op.kind = Op::Kind::kTrue;
      return Emit(std::move(op));
    }
    case Formula::Kind::kFalse: {
      Op op;
      op.kind = Op::Kind::kFalse;
      return Emit(std::move(op));
    }
    case Formula::Kind::kEquals: {
      Op op;
      op.kind = Op::Kind::kEquals;
      Result<Slot> lhs = ReadTerm(f.lhs());
      if (!lhs.ok()) return lhs.status();
      Result<Slot> rhs = ReadTerm(f.rhs());
      if (!rhs.ok()) return rhs.status();
      op.lhs = *lhs;
      op.rhs = *rhs;
      return Emit(std::move(op));
    }
    case Formula::Kind::kAtom: {
      Op op;
      op.kind = Op::Kind::kContains;
      op.relation = f.atom().relation();
      op.key_arity = f.atom().key_arity();
      for (const Term& t : f.atom().terms()) {
        Result<Slot> s = ReadTerm(t);
        if (!s.ok()) return s.status();
        op.slots.push_back(*s);
      }
      return Emit(std::move(op));
    }
    case Formula::Kind::kNot: {
      Result<int> child = Lower(*f.children()[0]);
      if (!child.ok()) return child.status();
      Op op;
      op.kind = Op::Kind::kNot;
      op.child = *child;
      return Emit(std::move(op));
    }
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      bool conj = f.kind() == Formula::Kind::kAnd;
      if (f.children().empty()) {
        Op op;
        op.kind = conj ? Op::Kind::kTrue : Op::Kind::kFalse;
        return Emit(std::move(op));
      }
      if (f.children().size() == 1) return Lower(*f.children()[0]);
      Op op;
      op.kind = conj ? Op::Kind::kAnd : Op::Kind::kOr;
      for (const FormulaPtr& c : f.children()) {
        Result<int> child = Lower(*c);
        if (!child.ok()) return child.status();
        op.children.push_back(*child);
      }
      return Emit(std::move(op));
    }
    case Formula::Kind::kExistsGuard:
      return LowerGuard(f, Op::Kind::kSemiJoin);
    case Formula::Kind::kForallGuard:
      return LowerGuard(f, Op::Kind::kAntiJoin);
    case Formula::Kind::kExistsDom:
      return LowerDom(f, Op::Kind::kExistsDom);
    case Formula::Kind::kForallDom:
      return LowerDom(f, Op::Kind::kForallDom);
  }
  return Status::Internal("unreachable formula kind");
}

}  // namespace

Result<FoProgram> FoProgram::Lower(const FormulaPtr& formula,
                                   const std::vector<SymbolId>& params) {
  FoProgram prog;
  prog.params_ = params;
  Lowerer lowerer(&prog.ops_, static_cast<int>(params.size()));
  for (size_t i = 0; i < params.size(); ++i) {
    lowerer.env().emplace(params[i], static_cast<int>(i));
  }
  if (lowerer.env().size() != params.size()) {
    return Status::InvalidArgument("program parameters must be distinct");
  }
  Result<int> root = lowerer.Lower(*formula);
  if (!root.ok()) return root.status();
  prog.root_ = *root;
  prog.width_ = std::max(lowerer.width(), 1);
  prog.needs_adom_ = lowerer.needs_adom();
  return prog;
}

// ---------------------------------------------------------- execution

namespace {

/// Chunk sizing for extension batches. The budget starts small and
/// doubles after every flush: a semijoin whose first extensions already
/// witness the row (the common certain-database Boolean case) decides
/// after a handful of child evaluations — the interpreter's
/// first-witness short-circuit — while large batches quickly reach the
/// cap where per-chunk dispatch amortizes across hundreds of rows.
constexpr size_t kChunkInitial = 8;
constexpr size_t kChunkRows = 512;

/// Rows between deadline polls: one steady_clock read per interval
/// keeps the overhead of an armed deadline under ~0.1% of row cost.
constexpr int kDeadlineCheckRows = 256;

using Bucket = std::vector<const Fact*>;

/// A batch of partial bindings: a flat rows x width register matrix.
struct Table {
  size_t width = 0;
  size_t n = 0;
  std::vector<SymbolId> data;

  SymbolId* row(size_t i) { return data.data() + i * width; }
  const SymbolId* row(size_t i) const { return data.data() + i * width; }
};

class Executor {
 public:
  Executor(const FoProgram& prog, const FactIndex& index,
           const std::vector<SymbolId>& adom,
           const Deadline* deadline = nullptr)
      : prog_(prog), index_(index), adom_(adom), deadline_(deadline) {}

  /// True once an armed deadline fired mid-evaluation; the surviving
  /// mask is then partial garbage and the caller must discard it.
  bool expired() const { return expired_; }

  /// In-place filter: clears mask[i] for every row of `t` that does not
  /// satisfy op `op_idx`. Only rows with mask[i] != 0 are examined.
  void Filter(int op_idx, int depth, Table& t, std::vector<char>& mask);

 private:
  /// Per-depth scratch: one op invocation per recursion level is live at
  /// a time, so buffers are reused across the (many) chunk flushes of
  /// that level without reallocation.
  struct Scratch {
    Table chunk;
    std::vector<int> src;          // chunk row -> source row.
    std::vector<char> chunk_mask;
    std::vector<char> decided;     // semijoin: witnessed; antijoin: failed.
    std::vector<char> tmp, acc, rem;
    std::vector<SymbolId> prefix;
    std::vector<SymbolId> values;  // kContains scratch fact.
  };

  Scratch& At(int depth) {
    if (static_cast<size_t>(depth) >= scratch_.size()) {
      scratch_.resize(depth + 1);
    }
    if (!scratch_[depth]) scratch_[depth] = std::make_unique<Scratch>();
    return *scratch_[depth];
  }

  static SymbolId SlotValue(const Slot& s, const SymbolId* row) {
    return s.is_const ? s.value : row[s.reg];
  }

  /// Amortized cooperative deadline poll: reads the clock once per
  /// kDeadlineCheckRows calls. Returns true once expired (sticky).
  bool CheckDeadline() {
    if (deadline_ == nullptr || expired_) return expired_;
    if (--deadline_countdown_ <= 0) {
      deadline_countdown_ = kDeadlineCheckRows;
      if (deadline_->Expired()) expired_ = true;
    }
    return expired_;
  }

  /// The smallest candidate bucket the index offers for the guard under
  /// `row`: key-prefix block, best bound-position bucket, or the whole
  /// relation. Buckets are stable for the duration of an evaluation
  /// (lazy builds only create new map entries).
  const Bucket& ProbeBucket(const Op& op, const SymbolId* row, Scratch& s) {
    const Bucket* best = &index_.Facts(op.relation);
    if (op.prefix_len > 0 && !best->empty()) {
      s.prefix.clear();
      for (int i = 0; i < op.prefix_len; ++i) {
        s.prefix.push_back(SlotValue(op.slots[i], row));
      }
      const Bucket& block = index_.FactsWithKeyPrefix(op.relation, s.prefix);
      if (block.size() < best->size()) best = &block;
    }
    for (int p : op.probe_positions) {
      if (best->size() <= 1) break;
      const Bucket& bucket =
          index_.FactsAt(op.relation, p, SlotValue(op.slots[p], row));
      if (bucket.size() < best->size()) best = &bucket;
    }
    return *best;
  }

  /// Unifies the guard against `fact` on the extension row `row` (which
  /// already holds the source row's registers): checks the bound and
  /// constant positions, writes the binding positions. Mirrors
  /// UnifyGuard in fo/evaluator.cc, without the Valuation.
  static bool MatchBind(const Op& op, const Fact& fact, SymbolId* row) {
    if (fact.arity() != static_cast<int>(op.slots.size())) return false;
    const std::vector<SymbolId>& vals = fact.values();
    for (size_t i = 0; i < op.slots.size(); ++i) {
      const Slot& s = op.slots[i];
      if (s.bind) {
        // Later positions repeating this variable read the register the
        // write just filled, so repeated fresh variables stay consistent.
        row[s.reg] = vals[i];
        continue;
      }
      if (vals[i] != SlotValue(s, row)) return false;
    }
    return true;
  }

  void FilterJoin(const Op& op, bool anti, int depth, Table& t,
                  std::vector<char>& mask);
  void FilterDom(const Op& op, bool anti, int depth, Table& t,
                 std::vector<char>& mask);

  /// The shared ∃/∀ scaffold: chunked extension materialization with
  /// adaptive budgets and chunk-granularity short-circuit.
  /// `enumerate(i, r, append)` is called once per undecided source row
  /// and must invoke `append(fill)` once per candidate extension, where
  /// `fill(ext)` writes the extension's new registers (returning false
  /// to discard the candidate); it should stop early once
  /// At(depth).decided[i] is set. Semijoin (anti == false): a row
  /// survives iff some extension passes the child. Antijoin
  /// (anti == true): a row survives iff no extension fails it.
  template <typename EnumerateFn>
  void FilterQuantifier(const Op& op, bool anti, int depth, Table& t,
                        std::vector<char>& mask,
                        const EnumerateFn& enumerate) {
    Scratch& s = At(depth);
    s.decided.assign(t.n, 0);
    const size_t W = prog_.width();
    s.chunk.width = W;
    s.chunk.data.clear();
    s.src.clear();

    auto flush = [&] {
      if (s.src.empty()) return;
      s.chunk.n = s.src.size();
      s.chunk_mask.assign(s.chunk.n, 1);
      Filter(op.child, depth + 1, s.chunk, s.chunk_mask);
      for (size_t k = 0; k < s.chunk.n; ++k) {
        // Semijoin: one surviving extension decides the source row.
        // Antijoin: one failing extension decides (kills) it.
        if (anti ? !s.chunk_mask[k] : s.chunk_mask[k] != 0) {
          s.decided[s.src[k]] = 1;
        }
      }
      s.chunk.data.clear();
      s.src.clear();
    };

    size_t budget = kChunkInitial;
    for (size_t i = 0; i < t.n; ++i) {
      if (CheckDeadline()) break;
      if (!mask[i]) continue;
      const SymbolId* r = t.row(i);
      auto append = [&](auto&& fill) {
        size_t pos = s.chunk.data.size();
        s.chunk.data.resize(pos + W);
        SymbolId* ext = s.chunk.data.data() + pos;
        std::copy(r, r + W, ext);
        if (!fill(ext)) {
          s.chunk.data.resize(pos);
          return;
        }
        s.src.push_back(static_cast<int>(i));
        if (s.src.size() >= budget) {
          // A flush may decide row i (first witness / first
          // counterexample — the interpreter's short-circuit at chunk
          // granularity); `enumerate` observes decided[i] and stops.
          flush();
          budget = std::min(budget * 2, kChunkRows);
        }
      };
      enumerate(i, r, append);
    }
    flush();
    for (size_t i = 0; i < t.n; ++i) {
      if (!mask[i]) continue;
      mask[i] = anti ? !s.decided[i] : s.decided[i];
    }
  }

  const FoProgram& prog_;
  const FactIndex& index_;
  const std::vector<SymbolId>& adom_;
  const Deadline* deadline_;
  int deadline_countdown_ = kDeadlineCheckRows;
  bool expired_ = false;
  std::vector<std::unique_ptr<Scratch>> scratch_;
};

void Executor::FilterJoin(const Op& op, bool anti, int depth, Table& t,
                          std::vector<char>& mask) {
  Scratch& s = At(depth);
  FilterQuantifier(
      op, anti, depth, t, mask,
      [&](size_t i, const SymbolId* r, auto&& append) {
        for (const Fact* fact : ProbeBucket(op, r, s)) {
          if (s.decided[i]) break;
          append([&](SymbolId* ext) { return MatchBind(op, *fact, ext); });
        }
      });
}

void Executor::FilterDom(const Op& op, bool anti, int depth, Table& t,
                         std::vector<char>& mask) {
  Scratch& s = At(depth);
  FilterQuantifier(op, anti, depth, t, mask,
                   [&](size_t i, const SymbolId* r, auto&& append) {
                     (void)r;
                     for (SymbolId value : adom_) {
                       if (s.decided[i]) break;
                       append([&](SymbolId* ext) {
                         ext[op.reg] = value;
                         return true;
                       });
                     }
                   });
}

void Executor::Filter(int op_idx, int depth, Table& t,
                      std::vector<char>& mask) {
  // Once the deadline fires, every remaining filter is a no-op: the
  // recursion unwinds fast and the caller discards the partial mask.
  if (expired_) return;
  const Op& op = prog_.ops()[op_idx];
  switch (op.kind) {
    case Op::Kind::kTrue:
      return;
    case Op::Kind::kFalse:
      std::fill(mask.begin(), mask.end(), 0);
      return;
    case Op::Kind::kEquals: {
      for (size_t i = 0; i < t.n; ++i) {
        if (!mask[i]) continue;
        const SymbolId* r = t.row(i);
        if (SlotValue(op.lhs, r) != SlotValue(op.rhs, r)) mask[i] = 0;
      }
      return;
    }
    case Op::Kind::kContains: {
      Scratch& s = At(depth);
      for (size_t i = 0; i < t.n; ++i) {
        if (CheckDeadline()) return;
        if (!mask[i]) continue;
        const SymbolId* r = t.row(i);
        s.values.clear();
        for (const Slot& slot : op.slots) {
          s.values.push_back(SlotValue(slot, r));
        }
        if (!index_.Contains(Fact(op.relation, s.values, op.key_arity))) {
          mask[i] = 0;
        }
      }
      return;
    }
    case Op::Kind::kNot: {
      Scratch& s = At(depth);
      s.tmp = mask;
      Filter(op.child, depth + 1, t, s.tmp);
      for (size_t i = 0; i < t.n; ++i) {
        if (mask[i] && s.tmp[i]) mask[i] = 0;
      }
      return;
    }
    case Op::Kind::kAnd: {
      for (int child : op.children) {
        Filter(child, depth + 1, t, mask);
      }
      return;
    }
    case Op::Kind::kOr: {
      Scratch& s = At(depth);
      s.acc.assign(t.n, 0);
      s.rem = mask;
      for (int child : op.children) {
        s.tmp = s.rem;
        Filter(child, depth + 1, t, s.tmp);
        bool any_left = false;
        for (size_t i = 0; i < t.n; ++i) {
          if (s.tmp[i]) {
            s.acc[i] = 1;
            s.rem[i] = 0;
          }
          any_left = any_left || s.rem[i];
        }
        if (!any_left) break;
      }
      mask = s.acc;
      return;
    }
    case Op::Kind::kSemiJoin:
      FilterJoin(op, /*anti=*/false, depth, t, mask);
      return;
    case Op::Kind::kAntiJoin:
      FilterJoin(op, /*anti=*/true, depth, t, mask);
      return;
    case Op::Kind::kExistsDom:
      FilterDom(op, /*anti=*/false, depth, t, mask);
      return;
    case Op::Kind::kForallDom:
      FilterDom(op, /*anti=*/true, depth, t, mask);
      return;
  }
}

}  // namespace

bool FoProgram::EvaluateBool(const FactIndex& index,
                             const std::vector<SymbolId>& adom) const {
  assert(params_.empty() && "Boolean evaluation of a parameterized program");
  std::vector<std::vector<SymbolId>> one_row(1);
  return EvaluateRows(index, adom, one_row)[0] != 0;
}

std::vector<char> FoProgram::EvaluateRows(
    const FactIndex& index, const std::vector<SymbolId>& adom,
    const std::vector<std::vector<SymbolId>>& rows) const {
  return EvaluateRows(index, adom, rows, 0, rows.size());
}

std::vector<char> FoProgram::EvaluateRows(
    const FactIndex& index, const std::vector<SymbolId>& adom,
    const std::vector<std::vector<SymbolId>>& rows, size_t begin,
    size_t end) const {
  // Unlimited deadlines never fail, so the Result unwrap is safe.
  return *EvaluateRows(index, adom, rows, begin, end, Deadline());
}

Result<std::vector<char>> FoProgram::EvaluateRows(
    const FactIndex& index, const std::vector<SymbolId>& adom,
    const std::vector<std::vector<SymbolId>>& rows, size_t begin,
    size_t end, const Deadline& deadline) const {
  assert(begin <= end && end <= rows.size());
  size_t n = end - begin;
  std::vector<char> mask(n, 1);
  if (n == 0) return mask;
  if (deadline.Expired()) {
    return Status::DeadlineExceeded(
        "deadline expired before batch evaluation");
  }
  Table t;
  t.width = width_;
  t.n = n;
  t.data.assign(t.n * t.width, 0);
  for (size_t i = 0; i < n; ++i) {
    assert(rows[begin + i].size() == params_.size() && "row arity != params()");
    std::copy(rows[begin + i].begin(), rows[begin + i].end(), t.row(i));
  }
  Executor exec(*this, index, adom,
                deadline.unlimited() ? nullptr : &deadline);
  exec.Filter(root_, 0, t, mask);
  if (exec.expired()) {
    return Status::DeadlineExceeded(
        "deadline expired during batch evaluation");
  }
  return mask;
}

// -------------------------------------------------------------- debug

namespace {

std::string SlotToString(const Slot& s) {
  if (s.is_const) return "'" + SymbolName(s.value) + "'";
  return (s.bind ? ">r" : "r") + std::to_string(s.reg);
}

}  // namespace

std::string FoProgram::ToString() const {
  std::ostringstream os;
  os << "program width=" << width_ << " params=" << params_.size()
     << " root=" << root_ << "\n";
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    os << "  [" << i << "] ";
    switch (op.kind) {
      case Op::Kind::kTrue:
        os << "true";
        break;
      case Op::Kind::kFalse:
        os << "false";
        break;
      case Op::Kind::kEquals:
        os << "eq " << SlotToString(op.lhs) << " " << SlotToString(op.rhs);
        break;
      case Op::Kind::kContains:
      case Op::Kind::kSemiJoin:
      case Op::Kind::kAntiJoin: {
        os << (op.kind == Op::Kind::kContains
                   ? "contains "
                   : op.kind == Op::Kind::kSemiJoin ? "semijoin " : "antijoin ")
           << SymbolName(op.relation) << "(";
        for (size_t j = 0; j < op.slots.size(); ++j) {
          if (j > 0) os << ",";
          os << SlotToString(op.slots[j]);
        }
        os << ")";
        if (op.kind != Op::Kind::kContains) {
          os << " prefix=" << op.prefix_len << " child=" << op.child;
        }
        break;
      }
      case Op::Kind::kNot:
        os << "not child=" << op.child;
        break;
      case Op::Kind::kAnd:
      case Op::Kind::kOr: {
        os << (op.kind == Op::Kind::kAnd ? "and" : "or");
        for (int c : op.children) os << " " << c;
        break;
      }
      case Op::Kind::kExistsDom:
      case Op::Kind::kForallDom:
        os << (op.kind == Op::Kind::kExistsDom ? "exists-dom" : "forall-dom")
           << " >r" << op.reg << " child=" << op.child;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace cqa
