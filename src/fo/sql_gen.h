#ifndef CQA_FO_SQL_GEN_H_
#define CQA_FO_SQL_GEN_H_

#include <string>

#include "cq/query.h"
#include "fo/formula.h"
#include "util/status.h"

/// \file
/// SQL generation for certain first-order rewritings — the practical
/// deployment path pioneered by Fuxman–Miller's ConQuer (cited as the
/// origin of the CERTAINTY(q) program in Section 2): when CERTAINTY(q)
/// is FO-expressible, the rewriting compiles to a plain SQL boolean
/// query that any RDBMS evaluates over the *inconsistent* database
/// directly, no repair enumeration anywhere.
///
/// Conventions: relation R of arity n is a table named R with columns
/// c1..cn (key columns first); the guarded quantifiers become
/// EXISTS / NOT EXISTS ... NOT(...) subqueries.

namespace cqa {

/// Renders `name` as a quoted SQL identifier: wrapped in double quotes
/// with embedded double quotes doubled, the identifier-side twin of the
/// single-quote literal escaping below. Relation names are user input
/// (the same hostile-name discipline store/ applies to tenant dirs):
/// a relation named `R; DROP TABLE` or `R" OR "1"="1` must land in the
/// emitted SQL as data, never as syntax. Shared with fo/sql_lower.h.
std::string QuoteSqlIdentifier(const std::string& name);

/// Renders a formula as a SQL boolean expression. Formulas containing
/// unguarded domain quantifiers are rejected (certain rewritings never
/// produce them).
Result<std::string> FormulaToSql(const FormulaPtr& formula);

/// Convenience: certain rewriting of `q` compiled to a complete
/// statement `SELECT <boolean expr>;`. Fails when the attack graph of
/// `q` is cyclic (Theorem 1) or the query has a self-join.
Result<std::string> CertainSqlRewriting(const Query& q);

}  // namespace cqa

#endif  // CQA_FO_SQL_GEN_H_
