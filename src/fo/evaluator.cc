#include "fo/evaluator.h"

#include <cassert>

namespace cqa {

namespace {

/// Resolves a term to a constant under `binding`; asserts on unbound
/// variables (the rewriter only produces well-scoped formulas).
SymbolId Resolve(const Term& t, const Valuation& binding) {
  if (t.is_const()) return t.id();
  auto v = binding.Get(t.id());
  assert(v.has_value() && "unbound variable in formula evaluation");
  return *v;
}

/// Unifies `guard` against `fact` extending `binding`; returns the newly
/// bound variables via `bound`, or false (with no change).
bool UnifyGuard(const Atom& guard, const Fact& fact, Valuation* binding,
                std::vector<SymbolId>* bound) {
  if (guard.relation() != fact.relation() ||
      guard.arity() != fact.arity()) {
    return false;
  }
  size_t before = bound->size();
  for (int i = 0; i < guard.arity(); ++i) {
    const Term& t = guard.terms()[i];
    SymbolId v = fact.values()[i];
    bool ok;
    if (t.is_const()) {
      ok = t.id() == v;
    } else {
      auto existing = binding->Get(t.id());
      if (existing.has_value()) {
        ok = *existing == v;
      } else {
        binding->Bind(t.id(), v);
        bound->push_back(t.id());
        ok = true;
      }
    }
    if (!ok) {
      while (bound->size() > before) {
        binding->Unbind(bound->back());
        bound->pop_back();
      }
      return false;
    }
  }
  return true;
}

}  // namespace

FormulaEvaluator::FormulaEvaluator(const Database& db)
    : owned_index_(db), index_(&*owned_index_), adom_(db.ActiveDomain()) {}

FormulaEvaluator::FormulaEvaluator(const FactIndex* index,
                                   std::vector<SymbolId> adom)
    : index_(index), adom_(std::move(adom)) {}

bool FormulaEvaluator::Eval(const FormulaPtr& formula) const {
  return Eval(formula, Valuation());
}

bool FormulaEvaluator::Eval(const FormulaPtr& formula,
                            const Valuation& binding) const {
  Valuation local = binding;
  return EvalRec(*formula, &local);
}

bool FormulaEvaluator::EvalRec(const Formula& f, Valuation* binding) const {
  switch (f.kind()) {
    case Formula::Kind::kTrue:
      return true;
    case Formula::Kind::kFalse:
      return false;
    case Formula::Kind::kAtom:
      return index_->Contains(binding->Apply(f.atom()));
    case Formula::Kind::kEquals:
      return Resolve(f.lhs(), *binding) == Resolve(f.rhs(), *binding);
    case Formula::Kind::kNot:
      return !EvalRec(*f.children()[0], binding);
    case Formula::Kind::kAnd: {
      for (const FormulaPtr& c : f.children()) {
        if (!EvalRec(*c, binding)) return false;
      }
      return true;
    }
    case Formula::Kind::kOr: {
      for (const FormulaPtr& c : f.children()) {
        if (EvalRec(*c, binding)) return true;
      }
      return false;
    }
    case Formula::Kind::kExistsGuard: {
      for (const Fact* fact : index_->Facts(f.atom().relation())) {
        std::vector<SymbolId> bound;
        if (!UnifyGuard(f.atom(), *fact, binding, &bound)) continue;
        bool ok = EvalRec(*f.children()[0], binding);
        for (SymbolId v : bound) binding->Unbind(v);
        if (ok) return true;
      }
      return false;
    }
    case Formula::Kind::kForallGuard: {
      for (const Fact* fact : index_->Facts(f.atom().relation())) {
        std::vector<SymbolId> bound;
        if (!UnifyGuard(f.atom(), *fact, binding, &bound)) continue;
        bool ok = EvalRec(*f.children()[0], binding);
        for (SymbolId v : bound) binding->Unbind(v);
        if (!ok) return false;
      }
      return true;
    }
    case Formula::Kind::kExistsDom: {
      bool had = binding->Get(f.var()).has_value();
      SymbolId old = had ? *binding->Get(f.var()) : 0;
      for (SymbolId value : adom_) {
        binding->Unbind(f.var());
        binding->Bind(f.var(), value);
        bool ok = EvalRec(*f.children()[0], binding);
        binding->Unbind(f.var());
        if (had) binding->Bind(f.var(), old);
        if (ok) return true;
      }
      if (had) binding->Bind(f.var(), old);
      return false;
    }
    case Formula::Kind::kForallDom: {
      bool had = binding->Get(f.var()).has_value();
      SymbolId old = had ? *binding->Get(f.var()) : 0;
      for (SymbolId value : adom_) {
        binding->Unbind(f.var());
        binding->Bind(f.var(), value);
        bool ok = EvalRec(*f.children()[0], binding);
        binding->Unbind(f.var());
        if (had) binding->Bind(f.var(), old);
        if (!ok) return false;
      }
      if (had) binding->Bind(f.var(), old);
      return true;
    }
  }
  return false;
}

}  // namespace cqa
