#include "fo/sql_lower.h"

#include <map>
#include <set>
#include <utility>

#include "fo/sql_gen.h"

namespace cqa {

namespace {

using Op = FoProgram::Op;
using Slot = FoProgram::Slot;

/// Interned symbols are stored as INTEGER columns, so a constant slot
/// renders as its id — never as a string literal that would need
/// escaping.
std::string IdLiteral(SymbolId id) { return std::to_string(id); }

std::string JoinAnd(const std::vector<std::string>& conds) {
  if (conds.empty()) return "1";
  std::string out = conds[0];
  for (size_t i = 1; i < conds.size(); ++i) out += " AND " + conds[i];
  return out;
}

/// Recursive op-to-SQL renderer. `reg_exprs` is the static register
/// scope: reg_exprs[r] is the SQL expression currently holding register
/// r (a parameter rendering at 0..k-1, a guard alias column inside join
/// subqueries), empty when r is out of scope — mirroring the Lowerer's
/// binding environment.
class CondLowerer {
 public:
  CondLowerer(const FoProgram& program, std::vector<std::string> reg_exprs)
      : program_(program), reg_exprs_(std::move(reg_exprs)) {}

  Result<std::string> Render(int op_index) {
    const Op& op = program_.ops()[op_index];
    switch (op.kind) {
      case Op::Kind::kTrue:
        return std::string("1");
      case Op::Kind::kFalse:
        return std::string("0");
      case Op::Kind::kEquals: {
        Result<std::string> lhs = SlotExpr(op.lhs);
        if (!lhs.ok()) return lhs.status();
        Result<std::string> rhs = SlotExpr(op.rhs);
        if (!rhs.ok()) return rhs.status();
        return "(" + *lhs + " = " + *rhs + ")";
      }
      case Op::Kind::kNot: {
        Result<std::string> child = Render(op.child);
        if (!child.ok()) return child.status();
        return "(NOT " + *child + ")";
      }
      case Op::Kind::kAnd:
      case Op::Kind::kOr: {
        if (op.children.empty())
          return std::string(op.kind == Op::Kind::kAnd ? "1" : "0");
        std::string joiner = op.kind == Op::Kind::kAnd ? " AND " : " OR ";
        std::string out = "(";
        for (size_t i = 0; i < op.children.size(); ++i) {
          Result<std::string> child = Render(op.children[i]);
          if (!child.ok()) return child.status();
          if (i > 0) out += joiner;
          out += *child;
        }
        return out + ")";
      }
      case Op::Kind::kContains: {
        // Membership probe: every slot is a read, no bindings.
        std::string alias = NextAlias();
        Result<std::vector<std::string>> conds = GuardConds(op, alias, nullptr);
        if (!conds.ok()) return conds.status();
        return "EXISTS (SELECT 1 FROM " + SqlTableName(op.relation) + " AS " +
               alias + " WHERE " + JoinAnd(*conds) + ")";
      }
      case Op::Kind::kSemiJoin:
      case Op::Kind::kAntiJoin: {
        std::string alias = NextAlias();
        std::vector<int> bound;
        Result<std::vector<std::string>> conds = GuardConds(op, alias, &bound);
        if (!conds.ok()) return conds.status();
        Result<std::string> child = Render(op.child);
        // Guard bindings scope over the child only.
        for (int reg : bound) reg_exprs_[reg].clear();
        if (!child.ok()) return child.status();
        if (op.kind == Op::Kind::kSemiJoin) {
          return "EXISTS (SELECT 1 FROM " + SqlTableName(op.relation) +
                 " AS " + alias + " WHERE " + JoinAnd(*conds) + " AND " +
                 *child + ")";
        }
        return "NOT EXISTS (SELECT 1 FROM " + SqlTableName(op.relation) +
               " AS " + alias + " WHERE " + JoinAnd(*conds) + " AND NOT (" +
               *child + "))";
      }
      case Op::Kind::kExistsDom:
      case Op::Kind::kForallDom:
        return Status::Unsupported(
            "active-domain quantifiers have no direct SQL form");
    }
    return Status::Internal("unknown FoProgram op kind");
  }

 private:
  std::string NextAlias() { return "t" + std::to_string(next_alias_++); }

  Result<std::string> SlotExpr(const Slot& s) {
    if (s.is_const) return IdLiteral(s.value);
    if (s.reg < 0 || s.reg >= static_cast<int>(reg_exprs_.size()) ||
        reg_exprs_[s.reg].empty()) {
      return Status::Internal("SQL lowering read register r" +
                              std::to_string(s.reg) + " out of scope");
    }
    return reg_exprs_[s.reg];
  }

  /// Renders the guard/membership atom of `op` against `alias`: read and
  /// constant slots become equality conditions, bind slots enter the
  /// register scope (recorded in `bound` for the caller to unwind). A
  /// later slot repeating a just-bound register compares against the
  /// alias column the bind installed, exactly MatchBind's behaviour for
  /// repeated fresh variables.
  Result<std::vector<std::string>> GuardConds(const Op& op,
                                              const std::string& alias,
                                              std::vector<int>* bound) {
    std::vector<std::string> conds;
    for (size_t i = 0; i < op.slots.size(); ++i) {
      const Slot& s = op.slots[i];
      std::string column = alias + "." + SqlColumnName(static_cast<int>(i));
      if (s.bind) {
        if (bound == nullptr)
          return Status::Internal("bind slot in a membership probe");
        if (s.reg >= static_cast<int>(reg_exprs_.size()))
          reg_exprs_.resize(s.reg + 1);
        reg_exprs_[s.reg] = column;
        bound->push_back(s.reg);
        continue;
      }
      Result<std::string> expr = SlotExpr(s);
      if (!expr.ok()) return expr.status();
      conds.push_back(column + " = " + *expr);
    }
    return conds;
  }

  const FoProgram& program_;
  std::vector<std::string> reg_exprs_;
  int next_alias_ = 0;
};

/// Join rendering of the canonical query's atoms: FROM aliases q0..qm-1
/// plus the WHERE conditions equating repeated variables and pinning
/// constants. On return, `var_exprs` maps each query variable to its
/// first-occurrence column.
struct CanonicalJoin {
  std::string from;
  std::vector<std::string> conds;
  std::map<SymbolId, std::string> var_exprs;
};

Result<CanonicalJoin> RenderCanonicalJoin(const CanonicalQuery& canonical) {
  if (canonical.query.empty())
    return Status::Unsupported("empty query has no SQL candidate form");
  CanonicalJoin join;
  const std::vector<Atom>& atoms = canonical.query.atoms();
  for (size_t a = 0; a < atoms.size(); ++a) {
    std::string alias = "q" + std::to_string(a);
    if (a > 0) join.from += ", ";
    join.from += SqlTableName(atoms[a].relation()) + " AS " + alias;
    for (int i = 0; i < atoms[a].arity(); ++i) {
      const Term& t = atoms[a].terms()[i];
      std::string column = alias + "." + SqlColumnName(i);
      if (t.is_const()) {
        join.conds.push_back(column + " = " + IdLiteral(t.id()));
      } else if (auto it = join.var_exprs.find(t.id());
                 it != join.var_exprs.end()) {
        join.conds.push_back(column + " = " + it->second);
      } else {
        join.var_exprs.emplace(t.id(), column);
      }
    }
  }
  return join;
}

/// Output column name of 0-based parameter `i`: p1..pk.
std::string ParamColumn(int i) { return "p" + std::to_string(i + 1); }

/// The correlated condition of `program` with parameters rendered as
/// the candidate subquery's output columns cand.p1..pk.
Result<std::string> CandidateCondition(const FoProgram& program) {
  std::vector<std::string> param_exprs;
  param_exprs.reserve(program.params().size());
  for (size_t i = 0; i < program.params().size(); ++i)
    param_exprs.push_back("cand." + ParamColumn(static_cast<int>(i)));
  return LowerProgramCondition(program, param_exprs);
}

/// Shared body of the answer-set statements:
/// `FROM (<candidates>) AS cand WHERE <condition>`.
Result<std::string> AnswersBody(const CanonicalQuery& canonical,
                                const FoProgram& program) {
  Result<std::string> candidates = CandidateSelectSql(canonical);
  if (!candidates.ok()) return candidates.status();
  Result<std::string> condition = CandidateCondition(program);
  if (!condition.ok()) return condition.status();
  return "FROM (" + *candidates + ") AS cand WHERE " + *condition;
}

std::string AnswersSelectList(const FoProgram& program) {
  std::string out;
  for (size_t i = 0; i < program.params().size(); ++i) {
    if (i > 0) out += ", ";
    out += "cand." + ParamColumn(static_cast<int>(i));
  }
  return out;
}

}  // namespace

std::string SqlTableName(SymbolId relation) {
  return QuoteSqlIdentifier(SymbolName(relation));
}

std::string SqlColumnName(int pos) { return "c" + std::to_string(pos + 1); }

Result<std::string> LowerProgramCondition(
    const FoProgram& program, const std::vector<std::string>& param_exprs) {
  if (param_exprs.size() != program.params().size()) {
    return Status::Internal(
        "SQL lowering got " + std::to_string(param_exprs.size()) +
        " parameter renderings for " +
        std::to_string(program.params().size()) + " program parameters");
  }
  // Parameters occupy registers 0..k-1 positionally.
  std::vector<std::string> reg_exprs(
      static_cast<size_t>(program.width()) > param_exprs.size()
          ? static_cast<size_t>(program.width())
          : param_exprs.size());
  for (size_t i = 0; i < param_exprs.size(); ++i) reg_exprs[i] = param_exprs[i];
  CondLowerer lowerer(program, std::move(reg_exprs));
  return lowerer.Render(program.root());
}

Result<std::string> RowDecisionSql(const FoProgram& program) {
  std::vector<std::string> param_exprs;
  param_exprs.reserve(program.params().size());
  for (size_t i = 0; i < program.params().size(); ++i)
    param_exprs.push_back("?" + std::to_string(i + 1));
  Result<std::string> condition = LowerProgramCondition(program, param_exprs);
  if (!condition.ok()) return condition.status();
  return "SELECT " + *condition;
}

Result<std::string> CandidateSelectSql(const CanonicalQuery& canonical) {
  if (canonical.params.empty()) {
    return Status::Unsupported(
        "Boolean canonicalization has no candidate projection; use "
        "BooleanCertainSql");
  }
  Result<CanonicalJoin> join = RenderCanonicalJoin(canonical);
  if (!join.ok()) return join.status();
  std::string out = "SELECT DISTINCT ";
  for (size_t i = 0; i < canonical.params.size(); ++i) {
    auto it = join->var_exprs.find(canonical.params[i]);
    if (it == join->var_exprs.end()) {
      return Status::Unsupported("parameter " +
                                 SymbolName(canonical.params[i]) +
                                 " does not occur in the query");
    }
    if (i > 0) out += ", ";
    out += it->second + " AS " + ParamColumn(static_cast<int>(i));
  }
  out += " FROM " + join->from;
  if (!join->conds.empty()) out += " WHERE " + JoinAnd(join->conds);
  return out;
}

Result<std::string> CertainAnswersSql(const CanonicalQuery& canonical,
                                      const FoProgram& program) {
  Result<std::string> body = AnswersBody(canonical, program);
  if (!body.ok()) return body.status();
  std::string select = AnswersSelectList(program);
  return "SELECT " + select + " " + *body + " ORDER BY " + select;
}

Result<std::string> CertainAnswersPageSql(const CanonicalQuery& canonical,
                                          const FoProgram& program) {
  Result<std::string> full = CertainAnswersSql(canonical, program);
  if (!full.ok()) return full.status();
  return *full + " LIMIT ?1 OFFSET ?2";
}

Result<std::string> CertainAnswersCountSql(const CanonicalQuery& canonical,
                                           const FoProgram& program) {
  Result<std::string> body = AnswersBody(canonical, program);
  if (!body.ok()) return body.status();
  return "SELECT COUNT(*) " + *body;
}

Result<std::string> BooleanCertainSql(const CanonicalQuery& canonical,
                                      const FoProgram& program) {
  if (!program.params().empty()) {
    return Status::Internal(
        "BooleanCertainSql requires a parameterless program");
  }
  Result<CanonicalJoin> join = RenderCanonicalJoin(canonical);
  if (!join.ok()) return join.status();
  Result<std::string> condition = LowerProgramCondition(program, {});
  if (!condition.ok()) return condition.status();
  // ComputeCertainFull's Boolean path: the query must be *possible*
  // (some embedding exists) and the rewriting must hold.
  return "SELECT EXISTS (SELECT 1 FROM " + join->from + " WHERE " +
         JoinAnd(join->conds) + ") AND (" + *condition + ")";
}

Result<std::string> BooleanSolveSql(const FoProgram& program) {
  if (!program.params().empty()) {
    return Status::Internal("BooleanSolveSql requires a parameterless program");
  }
  Result<std::string> condition = LowerProgramCondition(program, {});
  if (!condition.ok()) return condition.status();
  return "SELECT " + *condition;
}

Result<std::vector<std::string>> ProgramIndexDdl(const FoProgram& program) {
  std::vector<std::string> ddl;
  std::set<std::pair<SymbolId, int>> seen;
  for (const Op& op : program.ops()) {
    if (op.kind != Op::Kind::kContains && op.kind != Op::Kind::kSemiJoin &&
        op.kind != Op::Kind::kAntiJoin) {
      continue;
    }
    // The clustered PRIMARY KEY (c1..cn) already serves key-prefix
    // probes; single-position probes outside the prefix get their own
    // index, mirroring FactIndex's single-position buckets.
    for (int pos : op.probe_positions) {
      if (!seen.emplace(op.relation, pos).second) continue;
      std::string index = QuoteSqlIdentifier(
          "idx:" + SymbolName(op.relation) + ":" + SqlColumnName(pos));
      ddl.push_back("CREATE INDEX IF NOT EXISTS " + index + " ON " +
                    SqlTableName(op.relation) + " (" + SqlColumnName(pos) +
                    ")");
    }
  }
  return ddl;
}

}  // namespace cqa
