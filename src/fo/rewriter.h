#ifndef CQA_FO_REWRITER_H_
#define CQA_FO_REWRITER_H_

#include "cq/query.h"
#include "fo/formula.h"
#include "util/status.h"

/// \file
/// Certain first-order rewriting (Theorem 1, construction from Wijsen
/// TODS'12 via unattacked atoms, generalizing Fuxman–Miller). For a query
/// whose attack graph is acyclic, produces a sentence φ with
///   db ∈ CERTAINTY(q)  ⟺  db ⊨ φ.
///
/// Construction: pick an unattacked atom F = R(s⃗, t⃗); then
///   φ(q) = ∃[R(s⃗, t⃗)] ∀[R(s⃗, u⃗)] ( pattern(u⃗ ≙ t⃗) ∧ φ(q') )
/// where u⃗ are fresh variables, pattern(u⃗ ≙ t⃗) forces each u_j to agree
/// with the constants / repeated variables of t⃗, and q' is q \ {F} with
/// the non-key variables of F renamed to the corresponding u_j. The
/// recursion treats variables bound by outer quantifiers as constants
/// ("frozen") when recomputing attack graphs, exactly as the grounding
/// steps in the paper's proofs (Lemma 5 guarantees no new attacks).

namespace cqa {

/// Fails when the attack graph of `q` is cyclic (Theorem 1: no certain
/// FO rewriting exists) or `q` has a self-join / is a cyclic CQ.
Result<FormulaPtr> CertainRewriting(const Query& q);

/// Parameterized variant: variables in `params` are treated as constants
/// throughout the construction (frozen from the start) and remain free in
/// the produced formula. Evaluating the formula under a binding θ of the
/// parameters decides db ∈ CERTAINTY(θ(q)) — one rewriting serves every
/// grounding of the parameters, which is how certain-answer serving
/// compiles a non-Boolean query once. Fails when the attack graph of `q`
/// with `params` frozen is cyclic.
Result<FormulaPtr> CertainRewriting(const Query& q, const VarSet& params);

}  // namespace cqa

#endif  // CQA_FO_REWRITER_H_
