#include "fo/formula.h"

#include <algorithm>
#include <sstream>

namespace cqa {

// The constructor is protected; this local subclass lets the static
// factory methods below use std::make_shared.
struct FormulaFactory : Formula {
  explicit FormulaFactory(Kind k) : Formula(k) {}
};

FormulaPtr Formula::True() {
  return std::make_shared<const FormulaFactory>(Kind::kTrue);
}

FormulaPtr Formula::False() {
  return std::make_shared<const FormulaFactory>(Kind::kFalse);
}

FormulaPtr Formula::MakeAtom(Atom atom) {
  auto f = std::make_shared<FormulaFactory>(Kind::kAtom);
  f->atom_ = std::move(atom);
  return f;
}

FormulaPtr Formula::Equals(Term lhs, Term rhs) {
  auto f = std::make_shared<FormulaFactory>(Kind::kEquals);
  f->lhs_ = lhs;
  f->rhs_ = rhs;
  return f;
}

FormulaPtr Formula::Not(FormulaPtr child) {
  auto f = std::make_shared<FormulaFactory>(Kind::kNot);
  f->children_.push_back(std::move(child));
  return f;
}

FormulaPtr Formula::And(std::vector<FormulaPtr> children) {
  if (children.empty()) return True();
  if (children.size() == 1) return children[0];
  auto f = std::make_shared<FormulaFactory>(Kind::kAnd);
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::Or(std::vector<FormulaPtr> children) {
  if (children.empty()) return False();
  if (children.size() == 1) return children[0];
  auto f = std::make_shared<FormulaFactory>(Kind::kOr);
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::ExistsGuard(Atom guard, FormulaPtr child) {
  auto f = std::make_shared<FormulaFactory>(Kind::kExistsGuard);
  f->atom_ = std::move(guard);
  f->children_.push_back(std::move(child));
  return f;
}

FormulaPtr Formula::ForallGuard(Atom guard, FormulaPtr child) {
  auto f = std::make_shared<FormulaFactory>(Kind::kForallGuard);
  f->atom_ = std::move(guard);
  f->children_.push_back(std::move(child));
  return f;
}

FormulaPtr Formula::ExistsDom(SymbolId var, FormulaPtr child) {
  auto f = std::make_shared<FormulaFactory>(Kind::kExistsDom);
  f->var_ = var;
  f->children_.push_back(std::move(child));
  return f;
}

FormulaPtr Formula::ForallDom(SymbolId var, FormulaPtr child) {
  auto f = std::make_shared<FormulaFactory>(Kind::kForallDom);
  f->var_ = var;
  f->children_.push_back(std::move(child));
  return f;
}

int Formula::NodeCount() const {
  int count = 1;
  for (const FormulaPtr& c : children_) count += c->NodeCount();
  return count;
}

int Formula::QuantifierDepth() const {
  int child_max = 0;
  for (const FormulaPtr& c : children_) {
    child_max = std::max(child_max, c->QuantifierDepth());
  }
  bool quantifier = kind_ == Kind::kExistsGuard ||
                    kind_ == Kind::kForallGuard ||
                    kind_ == Kind::kExistsDom || kind_ == Kind::kForallDom;
  return child_max + (quantifier ? 1 : 0);
}

std::string Formula::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kTrue:
      os << "true";
      break;
    case Kind::kFalse:
      os << "false";
      break;
    case Kind::kAtom:
      os << atom_.ToString();
      break;
    case Kind::kEquals:
      os << lhs_.ToString() << " = " << rhs_.ToString();
      break;
    case Kind::kNot:
      os << "NOT(" << children_[0]->ToString() << ")";
      break;
    case Kind::kAnd: {
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << " AND ";
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kOr: {
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << " OR ";
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kExistsGuard:
      os << "EXISTS[" << atom_.ToString() << "](" << children_[0]->ToString()
         << ")";
      break;
    case Kind::kForallGuard:
      os << "FORALL[" << atom_.ToString() << "](" << children_[0]->ToString()
         << ")";
      break;
    case Kind::kExistsDom:
      os << "EXISTS " << SymbolName(var_) << "(" << children_[0]->ToString()
         << ")";
      break;
    case Kind::kForallDom:
      os << "FORALL " << SymbolName(var_) << "(" << children_[0]->ToString()
         << ")";
      break;
  }
  return os.str();
}

}  // namespace cqa
