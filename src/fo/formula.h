#ifndef CQA_FO_FORMULA_H_
#define CQA_FO_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "cq/atom.h"
#include "cq/term.h"

/// \file
/// First-order formulas over the database vocabulary, used to *represent*
/// certain first-order rewritings (Theorem 1). The AST is relational-
/// calculus flavoured: besides the boolean connectives it offers *guarded*
/// quantifiers
///   ExistsGuard(A, φ)  ==  ∃ free(A) . (A ∧ φ)
///   ForallGuard(A, φ)  ==  ∀ free(A) . (A → φ)
/// which bind exactly the variables of A that are unbound in the current
/// environment, iterating facts of A's relation instead of the whole
/// active domain. Domain quantifiers over the active domain are also
/// available so the AST is FO-complete.

namespace cqa {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,         // Membership test: θ(atom) ∈ db (all vars must be bound).
    kEquals,       // term == term under the current binding.
    kNot,
    kAnd,
    kOr,
    kExistsGuard,  // ∃ unbound vars of `atom`: atom holds ∧ child.
    kForallGuard,  // ∀ matches of `atom`: child holds.
    kExistsDom,    // ∃ var ∈ active domain: child.
    kForallDom,    // ∀ var ∈ active domain: child.
  };

  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr MakeAtom(Atom atom);
  static FormulaPtr Equals(Term lhs, Term rhs);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(std::vector<FormulaPtr> children);
  static FormulaPtr Or(std::vector<FormulaPtr> children);
  static FormulaPtr ExistsGuard(Atom guard, FormulaPtr child);
  static FormulaPtr ForallGuard(Atom guard, FormulaPtr child);
  static FormulaPtr ExistsDom(SymbolId var, FormulaPtr child);
  static FormulaPtr ForallDom(SymbolId var, FormulaPtr child);

  Kind kind() const { return kind_; }
  const Atom& atom() const { return atom_; }
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }
  SymbolId var() const { return var_; }
  const std::vector<FormulaPtr>& children() const { return children_; }

  /// Number of AST nodes.
  int NodeCount() const;
  /// Quantifier nesting depth.
  int QuantifierDepth() const;

  std::string ToString() const;

 protected:
  explicit Formula(Kind kind) : kind_(kind), var_(0) {}

 private:
  Kind kind_;
  Atom atom_;                        // kAtom, k*Guard.
  Term lhs_, rhs_;                   // kEquals.
  SymbolId var_;                     // k*Dom.
  std::vector<FormulaPtr> children_; // kNot, kAnd, kOr, quantifiers.
};

}  // namespace cqa

#endif  // CQA_FO_FORMULA_H_
