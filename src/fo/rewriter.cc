#include "fo/rewriter.h"

#include <string>
#include <unordered_map>

#include "core/attack_graph.h"

namespace cqa {

namespace {

/// Fresh-name factory for the universally quantified block variables.
class FreshVars {
 public:
  SymbolId Next() {
    return InternSymbol("$u" + std::to_string(counter_++));
  }

 private:
  int counter_ = 0;
};

/// Replaces every frozen variable by a fresh constant so that attack
/// graphs of subqueries are computed as if those variables were ground
/// (they are bound by outer quantifiers at evaluation time).
Query FreezeVars(const Query& q, const VarSet& frozen) {
  Query out = q;
  for (SymbolId v : frozen) {
    out = out.Substitute(v, InternSymbol("$frozen_" + SymbolName(v)));
  }
  return out;
}

Result<FormulaPtr> RewriteRec(const Query& q, const VarSet& frozen,
                              FreshVars* fresh) {
  if (q.empty()) return Formula::True();

  Result<AttackGraph> graph = AttackGraph::Compute(FreezeVars(q, frozen));
  if (!graph.ok()) return graph.status();
  std::vector<int> unattacked = graph->UnattackedAtoms();
  if (unattacked.empty()) {
    return Status::InvalidArgument(
        "attack graph is cyclic: no certain FO rewriting exists "
        "(Theorem 1)");
  }
  int fi = unattacked.front();
  const Atom& f = q.atom(fi);

  // Build the universal guard G = R(s⃗, u⃗) with fresh non-key variables,
  // the pattern equalities, and the renaming into the rest query.
  std::vector<Term> guard_terms(f.terms().begin(),
                                f.terms().begin() + f.key_arity());
  std::vector<FormulaPtr> body;
  VarSet key_vars = f.KeyVars();
  // First fresh variable chosen for each distinct non-key variable of F.
  std::unordered_map<SymbolId, SymbolId> rename;
  std::vector<Term> fresh_terms;
  for (int j = f.key_arity(); j < f.arity(); ++j) {
    SymbolId u = fresh->Next();
    fresh_terms.push_back(Term::Var(u));
    const Term& t = f.terms()[j];
    if (t.is_const()) {
      // Every block member must carry the constant here.
      body.push_back(Formula::Equals(Term::Var(u), t));
    } else if (key_vars.count(t.id()) || frozen.count(t.id())) {
      // Variable already bound via the key positions, or frozen (a query
      // parameter / bound by an outer quantifier): it acts as a
      // constant, so every block member must agree with it.
      body.push_back(Formula::Equals(Term::Var(u), t));
    } else {
      auto [it, inserted] = rename.emplace(t.id(), u);
      if (!inserted) {
        // Repeated non-key variable: positions must agree.
        body.push_back(
            Formula::Equals(Term::Var(u), Term::Var(it->second)));
      }
    }
  }
  guard_terms.insert(guard_terms.end(), fresh_terms.begin(),
                     fresh_terms.end());
  Atom guard(f.relation(), std::move(guard_terms), f.key_arity());

  // q' = (q \ {F}) with non-key variables of F renamed to the fresh ones.
  Query rest = q.WithoutAtom(fi);
  for (const auto& [from, to] : rename) {
    rest = rest.RenameVar(from, to);
  }
  VarSet frozen_next = frozen;
  for (SymbolId v : key_vars) frozen_next.insert(v);
  for (const Term& t : fresh_terms) frozen_next.insert(t.id());

  Result<FormulaPtr> child = RewriteRec(rest, frozen_next, fresh);
  if (!child.ok()) return child.status();
  body.push_back(*child);

  return Formula::ExistsGuard(
      f, Formula::ForallGuard(guard, Formula::And(std::move(body))));
}

}  // namespace

Result<FormulaPtr> CertainRewriting(const Query& q) {
  return CertainRewriting(q, VarSet());
}

Result<FormulaPtr> CertainRewriting(const Query& q, const VarSet& params) {
  if (q.HasSelfJoin()) {
    return Status::Unsupported("rewriting assumes a self-join-free query");
  }
  FreshVars fresh;
  return RewriteRec(q, params, &fresh);
}

}  // namespace cqa
