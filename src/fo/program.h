#ifndef CQA_FO_PROGRAM_H_
#define CQA_FO_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cq/matcher.h"
#include "fo/formula.h"
#include "util/deadline.h"
#include "util/status.h"

/// \file
/// Set-at-a-time execution of certain FO rewritings.
///
/// `CertainRewriting` fixes the formula at compile time; what varies per
/// request is the database and the candidate answer rows. The tree
/// interpreter (`FormulaEvaluator`) re-descends the AST once per row and
/// scans whole relations for every guarded quantifier. `FoProgram`
/// instead *lowers* the formula once into a flat physical program whose
/// ops work on batches of rows:
///
///   * a guarded ∃ becomes a **semijoin**: every undecided row probes the
///     guard relation through `FactIndex` (key-prefix bucket when the
///     leading positions are bound, best single-position bucket
///     otherwise, full scan only when nothing is bound), extensions are
///     materialized in chunks, the child program filters a whole chunk,
///     and a row survives iff one of its extensions does;
///   * a guarded ∀ becomes an **antijoin**: same probe, but a row dies as
///     soon as one of its extensions fails the child filter;
///   * ¬ is an antijoin against the child's surviving set, ∧/∨ sequence
///     and union filters, = and atom-membership are per-row probes;
///   * the unguarded domain quantifiers loop over the active domain —
///     they exist for FO completeness but never occur in the rewritings
///     the rewriter emits.
///
/// Variables are compiled to fixed *registers*; a batch is a flat
/// `rows × width` matrix plus a survivor mask, so the executor never
/// allocates a Valuation, never hashes a variable name, and touches the
/// AST zero times per row. Chunked materialization (kChunkRows) bounds
/// memory and gives semijoins first-witness early exit at chunk
/// granularity, so Boolean sentences keep the interpreter's
/// short-circuit behaviour.
///
/// The tree interpreter stays behind `FoExecMode::kInterpreter` as the
/// differential-testing oracle, exactly like `MatcherMode::kNaive` for
/// the matcher.

namespace cqa {

/// Execution policy of compiled FO plans. kProgram is the production
/// set-at-a-time path; kInterpreter is the retained tree-walking oracle.
enum class FoExecMode { kProgram, kInterpreter };

/// Process-wide default mode. Initialised once from the
/// CQA_FO_INTERPRETER environment variable (unset/"0" -> kProgram).
FoExecMode DefaultFoExecMode();
void SetDefaultFoExecMode(FoExecMode mode);

class FoProgram {
 public:
  /// One operand / atom position of an op: a constant, or a register
  /// that is read (bind == false) or written (bind == true, guarded
  /// quantifiers binding a fresh variable at this position).
  struct Slot {
    bool is_const = false;
    SymbolId value = 0;  // kConst payload.
    int reg = -1;        // register payload.
    bool bind = false;
  };

  struct Op {
    enum class Kind : uint8_t {
      kTrue,
      kFalse,
      kEquals,     // lhs == rhs under the row.
      kContains,   // θ(atom) ∈ index; all slots read.
      kNot,        // row survives iff child rejects it.
      kAnd,        // sequential filters.
      kOr,         // union of child filters (each child sees only the
                   // rows the earlier children rejected).
      kSemiJoin,   // guarded ∃: row survives iff some guard fact
                   // extension passes child.
      kAntiJoin,   // guarded ∀: row survives iff no guard fact
                   // extension fails child.
      kExistsDom,  // ∃ reg ∈ adom: child.
      kForallDom,  // ∀ reg ∈ adom: child.
    };
    Kind kind = Kind::kTrue;
    Slot lhs, rhs;            // kEquals.
    SymbolId relation = 0;    // kContains, kSemiJoin, kAntiJoin.
    int key_arity = 0;        // of the guard / membership atom.
    std::vector<Slot> slots;  // one per atom position.
    /// Number of leading positions statically bound: probed as one
    /// key-prefix bucket when >= 2 (a length-1 prefix is the same
    /// bucket as position 0).
    int prefix_len = 0;
    /// Statically bound positions outside the prefix probe, candidates
    /// for single-position buckets.
    std::vector<int> probe_positions;
    int reg = -1;     // kExistsDom / kForallDom binding register.
    int child = -1;   // kNot, joins, dom loops.
    std::vector<int> children;  // kAnd / kOr.
  };

  /// Lowers `formula` into a program whose free variables are exactly
  /// `params`, bound positionally by each input row of EvaluateRows.
  /// Fails when the formula reads a variable that is neither quantified
  /// nor in `params` (the interpreter would assert on the same input).
  static Result<FoProgram> Lower(const FormulaPtr& formula,
                                 const std::vector<SymbolId>& params);

  /// Decides the sentence (params() must be empty). `adom` is only read
  /// by domain-quantifier ops (see needs_adom()).
  bool EvaluateBool(const FactIndex& index,
                    const std::vector<SymbolId>& adom) const;

  /// Set-at-a-time batch evaluation: out[i] != 0 iff the formula holds
  /// under rows[i] bound positionally to params(). All rows are decided
  /// in one pass over the index.
  std::vector<char> EvaluateRows(
      const FactIndex& index, const std::vector<SymbolId>& adom,
      const std::vector<std::vector<SymbolId>>& rows) const;

  /// Contiguous-span variant for data-parallel execution: decides
  /// rows[begin, end) and returns a mask of size end - begin (entry i
  /// answers rows[begin + i]). Rows are per-row-independent, so
  /// evaluating a span is exactly the batch evaluation of its rows —
  /// workers splitting one batch into disjoint spans reproduce the
  /// whole-batch result bit for bit. Thread-safe against concurrent
  /// spans on the same program and index (both are read-only here).
  std::vector<char> EvaluateRows(
      const FactIndex& index, const std::vector<SymbolId>& adom,
      const std::vector<std::vector<SymbolId>>& rows, size_t begin,
      size_t end) const;

  /// Deadline-aware span evaluation: the executor polls `deadline` at
  /// its batch checkpoints (every few hundred rows / extension
  /// flushes) and abandons the evaluation with kDeadlineExceeded once
  /// it fires. An unlimited deadline adds one branch per checkpoint and
  /// produces exactly the plain EvaluateRows mask.
  Result<std::vector<char>> EvaluateRows(
      const FactIndex& index, const std::vector<SymbolId>& adom,
      const std::vector<std::vector<SymbolId>>& rows, size_t begin,
      size_t end, const Deadline& deadline) const;

  const std::vector<SymbolId>& params() const { return params_; }
  /// Register count == row width of the execution matrix.
  int width() const { return width_; }
  size_t size() const { return ops_.size(); }
  int root() const { return root_; }
  const std::vector<Op>& ops() const { return ops_; }
  /// True when the program contains a domain-quantifier op (callers may
  /// skip computing the active domain otherwise).
  bool needs_adom() const { return needs_adom_; }

  /// Human-readable disassembly (one op per line), for tests and debug.
  std::string ToString() const;

 private:
  FoProgram() = default;

  std::vector<Op> ops_;
  int root_ = -1;
  int width_ = 0;
  std::vector<SymbolId> params_;
  bool needs_adom_ = false;
};

}  // namespace cqa

#endif  // CQA_FO_PROGRAM_H_
