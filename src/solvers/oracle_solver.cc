#include "solvers/oracle_solver.h"

#include "cq/matcher.h"

namespace cqa {

Result<SolverCall> OracleSolver::Decide(EvalContext& ctx) const {
  RepairEnumerator repairs(ctx.db());
  SolverCall call;
  call.certain = repairs.ForEachIndexed(
      [&](const FactIndex& index, const Repair&) {
        return Satisfies(index, query_);
      });
  return call;
}

Result<std::optional<std::vector<Fact>>> OracleSolver::FindFalsifyingRepair(
    EvalContext& ctx) const {
  std::optional<std::vector<Fact>> out;
  RepairEnumerator repairs(ctx.db());
  repairs.ForEachIndexed([&](const FactIndex& index, const Repair& repair) {
    if (Satisfies(index, query_)) return true;
    std::vector<Fact> copy;
    copy.reserve(repair.size());
    for (const Fact* f : repair) copy.push_back(*f);
    out = std::move(copy);
    return false;
  });
  SolverCall call;
  call.certain = !out.has_value();
  stats_.Record(call);
  return out;
}

BigInt OracleSolver::CountSatisfyingRepairs(const Database& db) const {
  BigInt count(0);
  RepairEnumerator repairs(db);
  repairs.ForEachIndexed([&](const FactIndex& index, const Repair&) {
    if (Satisfies(index, query_)) count += BigInt(1);
    return true;
  });
  return count;
}

}  // namespace cqa
