#include "solvers/oracle_solver.h"

#include "cq/matcher.h"

namespace cqa {

bool OracleSolver::IsCertain(const Database& db, const Query& q) {
  RepairEnumerator repairs(db);
  return repairs.ForEachIndexed(
      [&](const FactIndex& index, const Repair&) {
        return Satisfies(index, q);
      });
}

std::optional<std::vector<Fact>> OracleSolver::FindFalsifyingRepair(
    const Database& db, const Query& q) {
  std::optional<std::vector<Fact>> out;
  RepairEnumerator repairs(db);
  repairs.ForEachIndexed([&](const FactIndex& index, const Repair& repair) {
    if (Satisfies(index, q)) return true;
    std::vector<Fact> copy;
    copy.reserve(repair.size());
    for (const Fact* f : repair) copy.push_back(*f);
    out = std::move(copy);
    return false;
  });
  return out;
}

BigInt OracleSolver::CountSatisfyingRepairs(const Database& db,
                                            const Query& q) {
  BigInt count(0);
  RepairEnumerator repairs(db);
  repairs.ForEachIndexed([&](const FactIndex& index, const Repair&) {
    if (Satisfies(index, q)) count += BigInt(1);
    return true;
  });
  return count;
}

}  // namespace cqa
