#ifndef CQA_SOLVERS_SAT_DPLL_H_
#define CQA_SOLVERS_SAT_DPLL_H_

#include <cstdint>
#include <vector>

#include "solvers/sat/cnf.h"

/// \file
/// A compact DPLL SAT solver (unit propagation + most-occurrences
/// branching). CERTAINTY(q) for coNP-classified queries is decided through
/// this solver via the falsifying-repair encoding in `SatSolver`. Plain
/// DPLL is entirely adequate for the block-structured instances the engine
/// generates, and vastly outperforms exhaustive repair enumeration while
/// staying small enough to audit.

namespace cqa {

enum class SatResult { kSat, kUnsat };

class DpllSolver {
 public:
  explicit DpllSolver(const Cnf& cnf);

  SatResult Solve();

  /// Valid after Solve() returned kSat: model()[v-1] is the value of
  /// variable v (1-based ids, as in the Cnf).
  const std::vector<bool>& model() const { return model_; }

  /// Number of branching decisions made (for benchmark reporting).
  int64_t decisions() const { return decisions_; }

 private:
  enum : int8_t { kUnassigned = -1, kFalse = 0, kTrue = 1 };

  /// Assigns a literal; false on conflict with the current assignment.
  bool Assign(int literal, std::vector<int>* undo);
  /// Unit propagation by clause scanning; false on conflict.
  bool Propagate(std::vector<int>* undo);
  void Undo(const std::vector<int>& undo);
  int PickBranchVariable() const;
  bool Search();

  int num_vars_;
  std::vector<std::vector<int>> clauses_;
  std::vector<int8_t> assignment_;  // Indexed by variable - 1.
  std::vector<int> occurrences_;    // Literal occurrence counts per var.
  std::vector<bool> model_;
  int64_t decisions_ = 0;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_SAT_DPLL_H_
