#ifndef CQA_SOLVERS_SAT_CNF_H_
#define CQA_SOLVERS_SAT_CNF_H_

#include <string>
#include <vector>

/// \file
/// Minimal CNF container. Literals use DIMACS conventions: variable v
/// (1-based) appears positively as +v and negatively as -v.

namespace cqa {

class Cnf {
 public:
  /// Returns a new 1-based variable id.
  int AddVar() { return ++num_vars_; }

  /// Adds a clause (disjunction of literals). Empty clauses make the
  /// formula unsatisfiable.
  void AddClause(std::vector<int> literals);

  int num_vars() const { return num_vars_; }
  const std::vector<std::vector<int>>& clauses() const { return clauses_; }

  /// DIMACS text, for debugging and interop.
  std::string ToDimacs() const;

 private:
  int num_vars_ = 0;
  std::vector<std::vector<int>> clauses_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_SAT_CNF_H_
