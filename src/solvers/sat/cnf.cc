#include "solvers/sat/cnf.h"

#include <sstream>

namespace cqa {

void Cnf::AddClause(std::vector<int> literals) {
  clauses_.push_back(std::move(literals));
}

std::string Cnf::ToDimacs() const {
  std::ostringstream os;
  os << "p cnf " << num_vars_ << " " << clauses_.size() << "\n";
  for (const auto& clause : clauses_) {
    for (int lit : clause) os << lit << " ";
    os << "0\n";
  }
  return os.str();
}

}  // namespace cqa
