#include "solvers/sat/dpll.h"

#include <cassert>
#include <cstdlib>

namespace cqa {

DpllSolver::DpllSolver(const Cnf& cnf)
    : num_vars_(cnf.num_vars()), clauses_(cnf.clauses()),
      assignment_(cnf.num_vars(), kUnassigned),
      occurrences_(cnf.num_vars(), 0) {
  for (const auto& clause : clauses_) {
    for (int lit : clause) {
      int v = std::abs(lit) - 1;
      assert(v >= 0 && v < num_vars_);
      ++occurrences_[v];
    }
  }
}

bool DpllSolver::Assign(int literal, std::vector<int>* undo) {
  int v = std::abs(literal) - 1;
  int8_t value = literal > 0 ? kTrue : kFalse;
  if (assignment_[v] != kUnassigned) return assignment_[v] == value;
  assignment_[v] = value;
  undo->push_back(v);
  return true;
}

bool DpllSolver::Propagate(std::vector<int>* undo) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& clause : clauses_) {
      int unassigned_lit = 0;
      int unassigned_count = 0;
      bool satisfied = false;
      for (int lit : clause) {
        int v = std::abs(lit) - 1;
        int8_t value = assignment_[v];
        if (value == kUnassigned) {
          ++unassigned_count;
          unassigned_lit = lit;
          if (unassigned_count > 1) break;
        } else if ((lit > 0) == (value == kTrue)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unassigned_count == 0) return false;  // Conflict.
      if (unassigned_count == 1) {
        if (!Assign(unassigned_lit, undo)) return false;
        changed = true;
      }
    }
  }
  return true;
}

void DpllSolver::Undo(const std::vector<int>& undo) {
  for (int v : undo) assignment_[v] = kUnassigned;
}

int DpllSolver::PickBranchVariable() const {
  int best = -1;
  int best_count = -1;
  for (int v = 0; v < num_vars_; ++v) {
    if (assignment_[v] == kUnassigned && occurrences_[v] > best_count) {
      best = v;
      best_count = occurrences_[v];
    }
  }
  return best;
}

bool DpllSolver::Search() {
  std::vector<int> undo;
  if (!Propagate(&undo)) {
    Undo(undo);
    return false;
  }
  int v = PickBranchVariable();
  if (v == -1) return true;  // Fully assigned, no conflict: SAT.
  ++decisions_;
  for (int phase = 1; phase >= 0; --phase) {
    std::vector<int> branch_undo;
    int lit = phase == 1 ? v + 1 : -(v + 1);
    if (Assign(lit, &branch_undo) && Search()) return true;
    Undo(branch_undo);
  }
  Undo(undo);
  return false;
}

SatResult DpllSolver::Solve() {
  if (Search()) {
    model_.assign(num_vars_, false);
    for (int v = 0; v < num_vars_; ++v) model_[v] = assignment_[v] == kTrue;
    return SatResult::kSat;
  }
  return SatResult::kUnsat;
}

}  // namespace cqa
