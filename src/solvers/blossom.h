#ifndef CQA_SOLVERS_BLOSSOM_H_
#define CQA_SOLVERS_BLOSSOM_H_

#include <vector>

/// \file
/// Maximum matching in general (non-bipartite) graphs via Edmonds'
/// blossom algorithm, O(V^3). Used by the two-atom solver: when the
/// conflict relation between facts is a partial matching, the conflict
/// graph is the line graph of a multigraph H, so a maximum independent
/// set transversal exists iff H has a matching saturating all block
/// vertices — a polynomial-time criterion, our stand-in for the
/// Kolaitis–Pema/Minty machinery (see DESIGN.md §2).

namespace cqa {

/// Undirected graph as adjacency lists over vertices 0..n-1.
class BlossomMatching {
 public:
  explicit BlossomMatching(int n) : n_(n), adj_(n) {}

  void AddEdge(int u, int v);

  /// Computes a maximum matching; returns its size. After the call,
  /// mate()[v] is v's partner or -1.
  int Solve();

  const std::vector<int>& mate() const { return mate_; }

 private:
  int FindAugmentingPath(int root);
  int LowestCommonAncestor(int a, int b);
  void MarkPath(int v, int base, int child);

  int n_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> mate_, parent_, base_;
  std::vector<bool> used_, blossom_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_BLOSSOM_H_
