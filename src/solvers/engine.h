#ifndef CQA_SOLVERS_ENGINE_H_
#define CQA_SOLVERS_ENGINE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "cq/query.h"
#include "db/database.h"
#include "util/status.h"

/// \file
/// The production entry point: classify CERTAINTY(q) (Theorems 1–4) and
/// dispatch the best solver —
///   FO            -> certain FO rewriting evaluation
///   P/Theorem 3   -> TerminalCycleSolver
///   P/AC(k)       -> AckSolver
///   P/C(k)        -> CkSolver
///   coNP / OPEN   -> SAT-backed falsifying-repair search (sound and
///                    complete; exponential only where Theorem 2 says it
///                    must be, unless P = coNP)
/// Non-Boolean queries are answered by treating free variables as
/// parameters: candidate bindings come from evaluating q on db (certain
/// answers are always possible answers), each decided as a Boolean
/// instance.

namespace cqa {

struct SolveOutcome {
  bool certain = false;
  ComplexityClass complexity = ComplexityClass::kFirstOrder;
  /// Which solver produced the answer ("fo-rewriting", "terminal-cycles",
  /// "ack", "ck", "sat").
  std::string solver;
};

class Engine {
 public:
  /// Decides db ∈ CERTAINTY(q) with the classification-driven dispatch.
  static Result<SolveOutcome> Solve(const Database& db, const Query& q);

  /// Certain answers of the non-Boolean query (q, free_vars): all
  /// bindings a⃗ of the free variables such that every repair satisfies
  /// q[free_vars ↦ a⃗]. Sorted lexicographically.
  ///
  /// The query is compiled ONCE — classification runs on q with the free
  /// variables frozen (grounding cannot change the attack graph, only
  /// the constant names), and on the FO path one parameterized rewriting
  /// plus one evaluator serve every candidate binding — instead of
  /// re-running ClassifyQuery + solver construction per row.
  static Result<std::vector<std::vector<SymbolId>>> CertainAnswers(
      const Database& db, const Query& q,
      const std::vector<SymbolId>& free_vars);

  /// Possible answers: bindings of the free variables holding in the
  /// full uncertain database. This is a superset of the answers of every
  /// repair, hence of the certain answers; useful as the candidate set
  /// and to contrast certain vs possible in the examples. Fails with
  /// InvalidArgument when `free_vars` contains a variable that does not
  /// occur in `q` (it could never be bound by an embedding).
  static Result<std::vector<std::vector<SymbolId>>> PossibleAnswers(
      const Database& db, const Query& q,
      const std::vector<SymbolId>& free_vars);

  /// A repair of `db` falsifying `q`, or nullopt when db ∈ CERTAINTY(q).
  /// Uses the Theorem 4 witness extraction for AC(k) queries and the
  /// SAT search otherwise (sound and complete for every query).
  static Result<std::optional<std::vector<Fact>>> FindFalsifyingRepair(
      const Database& db, const Query& q);
};

}  // namespace cqa

#endif  // CQA_SOLVERS_ENGINE_H_
