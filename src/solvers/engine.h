#ifndef CQA_SOLVERS_ENGINE_H_
#define CQA_SOLVERS_ENGINE_H_

#include <optional>
#include <vector>

#include "core/classifier.h"
#include "cq/query.h"
#include "db/database.h"
#include "plan/plan_cache.h"
#include "plan/query_plan.h"
#include "util/status.h"

/// \file
/// DEPRECATED back-compat shim — kept for one release. The production
/// front door is `cqa::Service` (serve/service.h): a versioned
/// request/response façade owning named databases, prepared-query
/// handles and answer pagination. `Engine`'s statics remain as thin
/// wrappers over the same compiled-plan machinery so existing callers
/// keep working, but every method is marked deprecated; in-tree code
/// (src/, examples/, bench/) must not call them — CI builds with
/// -Werror and checks that only the legacy differential tests opt out
/// via CQA_ALLOW_DEPRECATED_ENGINE.
///
/// What the shim does: every call resolves its query through the global
/// `PlanCache` (classification, attack-graph analysis and the FO
/// rewriting are compile-time artifacts shared across calls and
/// α-equivalent queries) and evaluates the plan —
///   FO            -> certain FO rewriting evaluation
///   P/Theorem 3   -> TerminalCycleSolver
///   P/AC(k)       -> AckSolver
///   P/C(k)        -> CkSolver
///   coNP / OPEN   -> SAT-backed falsifying-repair search (sound and
///                    complete; exponential only where Theorem 2 says it
///                    must be, unless P = coNP)
/// Non-Boolean queries are answered by treating free variables as
/// parameters: candidate bindings come from evaluating q on db (certain
/// answers are always possible answers), each decided as a Boolean
/// instance through a parameterized plan.
///
/// The batch entry points serve many queries against one database over a
/// small worker pool: plans come from a shared cache, and each worker
/// reuses one `EvalContext` (FactIndex + FO evaluator) across all the
/// queries it handles.

/// The deprecation is suppressible per translation unit: the shim's own
/// implementation and the legacy differential tests (which deliberately
/// pit Service against Engine) define CQA_ALLOW_DEPRECATED_ENGINE
/// before including this header. Everything else sees the attribute,
/// and the CI -Werror build turns a stray call into a build failure.
#if defined(CQA_ALLOW_DEPRECATED_ENGINE)
#define CQA_ENGINE_DEPRECATED
#else
#define CQA_ENGINE_DEPRECATED \
  [[deprecated("use cqa::Service (serve/service.h), the one front door")]]
#endif

namespace cqa {

class ThreadPool;

/// Options for the batched serving front.
struct BatchOptions {
  /// Worker threads; 0 = DefaultServingThreads() (hardware, capped at 8).
  /// Ignored when `pool` is set (the pool's size governs).
  int num_threads = 0;
  /// Plan cache to resolve queries through; null = PlanCache::Global().
  PlanCache* cache = nullptr;
  /// Long-lived worker pool to run on; null = a transient pool per call.
  /// A serving front issuing many batches should own one pool and pass
  /// it here to avoid per-batch thread spawn/join. The batch call still
  /// blocks until its items are done; sharing one pool across
  /// *concurrent* batch calls serializes their Wait barriers.
  ThreadPool* pool = nullptr;
};

/// One non-Boolean query of a CertainAnswersBatch.
struct CertainAnswersRequest {
  Query query;
  std::vector<SymbolId> free_vars;
};

class Engine {
 public:
  /// Decides db ∈ CERTAINTY(q) via the compiled (and globally cached)
  /// plan.
  CQA_ENGINE_DEPRECATED
  static Result<SolveOutcome> Solve(const Database& db, const Query& q);

  /// Certain answers of the non-Boolean query (q, free_vars): all
  /// bindings a⃗ of the free variables such that every repair satisfies
  /// q[free_vars ↦ a⃗]. Sorted lexicographically.
  ///
  /// The query is compiled ONCE into a parameterized plan —
  /// classification runs with the free variables frozen (grounding
  /// cannot change the attack graph, only the constant names), and on
  /// the FO path one parameterized rewriting plus one evaluator serve
  /// every candidate binding.
  CQA_ENGINE_DEPRECATED
  static Result<std::vector<std::vector<SymbolId>>> CertainAnswers(
      const Database& db, const Query& q,
      const std::vector<SymbolId>& free_vars);

  /// Possible answers: bindings of the free variables holding in the
  /// full uncertain database. This is a superset of the answers of every
  /// repair, hence of the certain answers; useful as the candidate set
  /// and to contrast certain vs possible in the examples. Fails with
  /// InvalidArgument when `free_vars` contains a variable that does not
  /// occur in `q` (it could never be bound by an embedding).
  CQA_ENGINE_DEPRECATED
  static Result<std::vector<std::vector<SymbolId>>> PossibleAnswers(
      const Database& db, const Query& q,
      const std::vector<SymbolId>& free_vars);

  /// A repair of `db` falsifying `q`, or nullopt when db ∈ CERTAINTY(q).
  /// Uses the Theorem 4 witness extraction for AC(k) queries and the
  /// SAT search otherwise (sound and complete for every query).
  CQA_ENGINE_DEPRECATED
  static Result<std::optional<std::vector<Fact>>> FindFalsifyingRepair(
      const Database& db, const Query& q);

  // --------------------------------------------------------- serving
  /// Decides a batch of Boolean queries against one database over a
  /// worker pool. Results are positionally aligned with `queries`; each
  /// item carries its own status (one malformed query does not fail the
  /// batch). Plans are shared through `options.cache`, so repeated or
  /// α-equivalent queries compile once.
  CQA_ENGINE_DEPRECATED
  static std::vector<Result<SolveOutcome>> SolveBatch(
      const Database& db, const std::vector<Query>& queries,
      const BatchOptions& options = {});

  /// Batched certain answers: each request is answered as in
  /// CertainAnswers, with plans shared through the cache and per-worker
  /// EvalContext reuse.
  CQA_ENGINE_DEPRECATED
  static std::vector<Result<std::vector<std::vector<SymbolId>>>>
  CertainAnswersBatch(const Database& db,
                      const std::vector<CertainAnswersRequest>& requests,
                      const BatchOptions& options = {});
};

}  // namespace cqa

#endif  // CQA_SOLVERS_ENGINE_H_
