#ifndef CQA_SOLVERS_FO_SOLVER_H_
#define CQA_SOLVERS_FO_SOLVER_H_

#include "cq/query.h"
#include "cq/valuation.h"
#include "db/database.h"
#include "fo/evaluator.h"
#include "fo/formula.h"
#include "util/status.h"

/// \file
/// CERTAINTY(q) for queries with an acyclic attack graph, by evaluating
/// the certain first-order rewriting (Theorem 1). The rewriting is
/// computed once per query and can be reused across databases — and, via
/// the parameterized Create overload, across groundings of a fixed set of
/// free variables (the Engine's per-query compile cache for non-Boolean
/// queries).

namespace cqa {

class FoSolver {
 public:
  /// Fails when q's attack graph is cyclic (Theorem 1: not FO).
  static Result<FoSolver> Create(const Query& q);

  /// Parameterized compile: `params` are kept free in the rewriting and
  /// must be bound at evaluation time. Fails when the attack graph with
  /// `params` frozen is cyclic.
  static Result<FoSolver> Create(const Query& q, const VarSet& params);

  /// db ∈ CERTAINTY(q), by formula evaluation — polynomial time.
  bool IsCertain(const Database& db) const;

  /// db ∈ CERTAINTY(θ(q)) for the parameter binding θ, reusing a
  /// caller-provided evaluator (one FactIndex per database, not per row).
  bool IsCertain(const FormulaEvaluator& evaluator,
                 const Valuation& params_binding) const;

  const FormulaPtr& rewriting() const { return rewriting_; }

 private:
  explicit FoSolver(FormulaPtr rewriting)
      : rewriting_(std::move(rewriting)) {}
  FormulaPtr rewriting_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_FO_SOLVER_H_
