#ifndef CQA_SOLVERS_FO_SOLVER_H_
#define CQA_SOLVERS_FO_SOLVER_H_

#include <memory>
#include <vector>

#include "cq/query.h"
#include "cq/valuation.h"
#include "db/database.h"
#include "fo/evaluator.h"
#include "fo/formula.h"
#include "fo/program.h"
#include "solvers/solver.h"
#include "util/status.h"

/// \file
/// CERTAINTY(q) for queries with an acyclic attack graph, by evaluating
/// the certain first-order rewriting (Theorem 1). The rewriting is
/// computed once per query — at Create time — and can be reused across
/// databases and threads; via the parameterized Create overload it also
/// serves every grounding of a fixed set of free variables (the
/// QueryPlan compile path for non-Boolean queries).
///
/// Create also lowers the rewriting into a set-at-a-time `FoProgram`
/// (fo/program.h). `Decide` runs the program by default and the tree
/// interpreter under `FoExecMode::kInterpreter`; `IsCertainRow` is
/// always the tree interpreter — it is the per-row differential oracle
/// the program executor is tested against.

namespace cqa {

class FoSolver final : public Solver {
 public:
  /// Fails when q's attack graph is cyclic (Theorem 1: not FO).
  static Result<FoSolver> Create(const Query& q);

  /// Parameterized compile: `params` are kept free in the rewriting and
  /// must be bound at evaluation time. Fails when the attack graph with
  /// `params` frozen is cyclic.
  static Result<FoSolver> Create(const Query& q, const VarSet& params);

  SolverKind kind() const override { return SolverKind::kFoRewriting; }

  /// db ∈ CERTAINTY(q), by compiled-program execution (or formula
  /// interpretation under FoExecMode::kInterpreter) — polynomial time.
  /// Reuses the context's shared index (one FactIndex per database, not
  /// per call).
  Result<SolverCall> Decide(EvalContext& ctx) const override;

  /// db ∈ CERTAINTY(θ(q)) for the parameter binding θ, by tree
  /// interpretation over a caller-provided evaluator. This is the
  /// row-at-a-time oracle; batch row traffic runs program() through
  /// QueryPlan::IsCertainRows.
  bool IsCertainRow(const FormulaEvaluator& evaluator,
                    const Valuation& params_binding) const;

  const FormulaPtr& rewriting() const { return rewriting_; }

  /// The lowered set-at-a-time program (never null: lowering a
  /// rewriting cannot fail). Batch row decisions go through
  /// QueryPlan::IsCertainRows, which owns the row-arity validation; the
  /// program's parameters here follow ascending SymbolId order over the
  /// Create params.
  std::shared_ptr<const FoProgram> program() const { return program_; }

 private:
  FoSolver(Query q, FormulaPtr rewriting,
           std::shared_ptr<const FoProgram> program)
      : Solver(std::move(q)),
        rewriting_(std::move(rewriting)),
        program_(std::move(program)) {}
  FormulaPtr rewriting_;
  std::shared_ptr<const FoProgram> program_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_FO_SOLVER_H_
