#ifndef CQA_SOLVERS_FO_SOLVER_H_
#define CQA_SOLVERS_FO_SOLVER_H_

#include "cq/query.h"
#include "cq/valuation.h"
#include "db/database.h"
#include "fo/evaluator.h"
#include "fo/formula.h"
#include "solvers/solver.h"
#include "util/status.h"

/// \file
/// CERTAINTY(q) for queries with an acyclic attack graph, by evaluating
/// the certain first-order rewriting (Theorem 1). The rewriting is
/// computed once per query — at Create time — and can be reused across
/// databases and threads; via the parameterized Create overload it also
/// serves every grounding of a fixed set of free variables (the
/// QueryPlan compile path for non-Boolean queries).

namespace cqa {

class FoSolver final : public Solver {
 public:
  /// Fails when q's attack graph is cyclic (Theorem 1: not FO).
  static Result<FoSolver> Create(const Query& q);

  /// Parameterized compile: `params` are kept free in the rewriting and
  /// must be bound at evaluation time. Fails when the attack graph with
  /// `params` frozen is cyclic.
  static Result<FoSolver> Create(const Query& q, const VarSet& params);

  SolverKind kind() const override { return SolverKind::kFoRewriting; }

  /// db ∈ CERTAINTY(q), by formula evaluation — polynomial time. Reuses
  /// the context's shared evaluator (one FactIndex per database, not per
  /// call).
  Result<SolverCall> Decide(EvalContext& ctx) const override;

  /// db ∈ CERTAINTY(θ(q)) for the parameter binding θ, reusing a
  /// caller-provided evaluator (one FactIndex per database, not per row).
  bool IsCertainRow(const FormulaEvaluator& evaluator,
                    const Valuation& params_binding) const;

  const FormulaPtr& rewriting() const { return rewriting_; }

 private:
  FoSolver(Query q, FormulaPtr rewriting)
      : Solver(std::move(q)), rewriting_(std::move(rewriting)) {}
  FormulaPtr rewriting_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_FO_SOLVER_H_
