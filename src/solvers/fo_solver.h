#ifndef CQA_SOLVERS_FO_SOLVER_H_
#define CQA_SOLVERS_FO_SOLVER_H_

#include "cq/query.h"
#include "db/database.h"
#include "fo/formula.h"
#include "util/status.h"

/// \file
/// CERTAINTY(q) for queries with an acyclic attack graph, by evaluating
/// the certain first-order rewriting (Theorem 1). The rewriting is
/// computed once per query and can be reused across databases.

namespace cqa {

class FoSolver {
 public:
  /// Fails when q's attack graph is cyclic (Theorem 1: not FO).
  static Result<FoSolver> Create(const Query& q);

  /// db ∈ CERTAINTY(q), by formula evaluation — polynomial time.
  bool IsCertain(const Database& db) const;

  const FormulaPtr& rewriting() const { return rewriting_; }

 private:
  explicit FoSolver(FormulaPtr rewriting)
      : rewriting_(std::move(rewriting)) {}
  FormulaPtr rewriting_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_FO_SOLVER_H_
