#include "solvers/mis.h"

#include <algorithm>
#include <cassert>

namespace cqa {

void MaxIndependentSet::AddEdge(int u, int v) {
  assert(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v);
  if (adj_[u].empty()) adj_[u].assign(n_, 0);
  if (adj_[v].empty()) adj_[v].assign(n_, 0);
  adj_[u][v] = 1;
  adj_[v][u] = 1;
}

int MaxIndependentSet::UpperBound(const std::vector<int>& candidates) const {
  // Greedy clique cover: each clique contributes at most one vertex.
  int cliques = 0;
  std::vector<char> assigned(candidates.size(), 0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (assigned[i]) continue;
    ++cliques;
    assigned[i] = 1;
    std::vector<int> clique{candidates[i]};
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      if (assigned[j]) continue;
      int v = candidates[j];
      bool adjacent_to_all = true;
      for (int u : clique) {
        if (adj_[u].empty() || !adj_[u][v]) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) {
        clique.push_back(v);
        assigned[j] = 1;
      }
    }
  }
  return cliques;
}

void MaxIndependentSet::Search(std::vector<int> candidates,
                               std::vector<int>* current) {
  ++nodes_;
  if (current->size() + candidates.size() <= best_set_.size()) return;
  if (candidates.empty()) {
    if (current->size() > best_set_.size()) best_set_ = *current;
    return;
  }
  if (current->size() + UpperBound(candidates) <= best_set_.size()) return;

  // Branch on the candidate with the most candidate-neighbours (max
  // degree first keeps the residual graphs small).
  size_t pick = 0;
  int best_degree = -1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    int degree = 0;
    int v = candidates[i];
    if (!adj_[v].empty()) {
      for (int u : candidates) degree += adj_[v][u];
    }
    if (degree > best_degree) {
      best_degree = degree;
      pick = i;
    }
  }
  int v = candidates[pick];

  // Branch 1: include v.
  std::vector<int> included;
  for (int u : candidates) {
    if (u != v && (adj_[v].empty() || !adj_[v][u])) included.push_back(u);
  }
  current->push_back(v);
  Search(std::move(included), current);
  current->pop_back();

  // Branch 2: exclude v.
  std::vector<int> excluded;
  for (int u : candidates) {
    if (u != v) excluded.push_back(u);
  }
  Search(std::move(excluded), current);
}

int MaxIndependentSet::Solve() {
  std::vector<int> all(n_);
  for (int i = 0; i < n_; ++i) all[i] = i;
  std::vector<int> current;
  best_set_.clear();
  Search(std::move(all), &current);
  return static_cast<int>(best_set_.size());
}

}  // namespace cqa
