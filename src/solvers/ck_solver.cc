#include "solvers/ck_solver.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "db/purify.h"
#include "solvers/ack_solver.h"

namespace cqa {

CkSolver::CkSolver(Query q)
    : Solver(std::move(q)), shape_(MatchCkPattern(query_)) {}

Result<SolverCall> CkSolver::Decide(EvalContext& ctx) const {
  const Query& q = query_;
  const std::optional<CkShape>& shape = shape_;
  if (!shape.has_value()) {
    return Status::InvalidArgument("query does not match C(k)");
  }
  int k = shape->k;
  Database purified = Purify(ctx.db(), q);

  internal::LayeredCycleSolver solver(k);
  solver.ForbidAllKCycles();
  std::map<SymbolId, int> layer_of;
  for (int i = 0; i < k; ++i) {
    layer_of[q.atom(shape->atom_order[i]).relation()] = i;
  }
  for (int fid = 0; fid < purified.size(); ++fid) {
    const Fact& f = purified.facts()[fid];
    auto it = layer_of.find(f.relation());
    if (it == layer_of.end()) continue;
    solver.AddEdge(it->second, f.values()[0], f.values()[1], fid);
  }
  SolverCall call;
  call.certain = !solver.FindFalsifyingChoice().has_value();
  return call;
}

Result<bool> CkSolver::IsCertainViaLemma9(const Database& db) const {
  const Query& q = query_;
  const std::optional<CkShape>& shape = shape_;
  if (!shape.has_value()) {
    return Status::InvalidArgument("query does not match C(k)");
  }
  int k = shape->k;
  // Build AC(k) over the same relation names plus a fresh S relation.
  Query ack = q;
  SymbolId s_rel = InternSymbol("$S" + std::to_string(k));
  std::vector<Term> s_terms;
  s_terms.reserve(k);
  for (SymbolId v : shape->var_cycle) s_terms.push_back(Term::Var(v));
  ack.AddAtom(Atom(s_rel, std::move(s_terms), k));

  // f(db): original facts plus S_k = D^k (Lemma 9).
  Database padded = db;
  std::vector<SymbolId> domain = db.ActiveDomain();
  std::vector<SymbolId> tuple(k, 0);
  std::function<Status(int)> fill = [&](int pos) -> Status {
    if (pos == k) {
      return padded.AddFact(Fact(s_rel, tuple, k));
    }
    for (SymbolId a : domain) {
      tuple[pos] = a;
      CQA_RETURN_NOT_OK(fill(pos + 1));
    }
    return Status::OK();
  };
  CQA_RETURN_NOT_OK(fill(0));
  return AckSolver(ack).IsCertain(padded);
}

}  // namespace cqa
