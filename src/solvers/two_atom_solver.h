#ifndef CQA_SOLVERS_TWO_ATOM_SOLVER_H_
#define CQA_SOLVERS_TWO_ATOM_SOLVER_H_

#include "cq/query.h"
#include "db/database.h"
#include "util/status.h"

/// \file
/// CERTAINTY(q) for two-atom queries q = {F, G} — the base case of the
/// Theorem 3 algorithm, standing in for the Kolaitis–Pema procedure the
/// paper cites ([13, Theorem 2]).
///
/// Pipeline:
///  * attack graph acyclic          -> certain FO rewriting (Theorem 1);
///  * weak 2-cycle F <-> G          -> conflict-graph reduction, below;
///  * strong 2-cycle                -> SAT-based search (the problem is
///                                     coNP-complete, Theorem 2).
///
/// Conflict-graph reduction. After purification, a repair falsifies q iff
/// one fact can be chosen per block avoiding every *conflict pair*
/// {θ(F), θ(G)}. In the conflict graph G_c (vertices = facts, edges =
/// block cliques + conflict pairs) that is: α(G_c) == #blocks. For weak
/// cycles each fact's conflicts lie inside a single opposite block, which
/// makes G_c claw-free — the structure Kolaitis–Pema exploit via Minty's
/// algorithm. We solve two regimes:
///  * conflicts form a partial matching (each fact has at most one
///    partner): G_c is the line graph of a bipartite multigraph H
///    (blocks on one side, conflict pairs on the other; facts are edges),
///    so α(G_c) = ν(H) via Edmonds/blossom matching — polynomial;
///  * otherwise: exact branch-and-bound MIS on the claw-free G_c
///    (worst-case exponential; see DESIGN.md §2/§6).
///
/// Instance-based: each solver owns its query and remembers which
/// decision path handled the last call on *this* instance — there is no
/// static mutable state, so distinct instances can run concurrently.

namespace cqa {

class TwoAtomSolver {
 public:
  /// Which decision path handled the last IsCertain call on this
  /// instance.
  enum class Path { kFoRewriting, kMatching, kMis, kSat };

  /// `q` must have exactly two atoms and no self-join (validated at
  /// IsCertain time).
  explicit TwoAtomSolver(Query q) : query_(std::move(q)) {}

  /// Decides db ∈ CERTAINTY(q).
  Result<bool> IsCertain(const Database& db);

  const Query& query() const { return query_; }
  Path path() const { return path_; }

 private:
  Query query_;
  Path path_ = Path::kSat;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_TWO_ATOM_SOLVER_H_
