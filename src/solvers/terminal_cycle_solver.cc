#include "solvers/terminal_cycle_solver.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/attack_graph.h"
#include "cq/matcher.h"
#include "db/purify.h"
#include "solvers/two_atom_solver.h"

namespace cqa {

namespace {

/// Distinct key variables of `atom`, in term order.
std::vector<SymbolId> DistinctKeyVars(const Atom& atom) {
  std::vector<SymbolId> out;
  std::set<SymbolId> seen;
  for (int i = 0; i < atom.key_arity(); ++i) {
    const Term& t = atom.terms()[i];
    if (t.is_var() && seen.insert(t.id()).second) out.push_back(t.id());
  }
  return out;
}

/// Bindings for `vars` extracted by unifying `atom` against `fact`.
/// Returns false when the fact does not match the atom's pattern.
bool ExtractBinding(const Atom& atom, const Fact& fact,
                    std::map<SymbolId, SymbolId>* binding) {
  if (atom.relation() != fact.relation() || atom.arity() != fact.arity()) {
    return false;
  }
  std::map<SymbolId, SymbolId> local;
  for (int i = 0; i < atom.arity(); ++i) {
    const Term& t = atom.terms()[i];
    SymbolId v = fact.values()[i];
    if (t.is_const()) {
      if (t.id() != v) return false;
    } else {
      auto [it, inserted] = local.emplace(t.id(), v);
      if (!inserted && it->second != v) return false;
    }
  }
  *binding = std::move(local);
  return true;
}

Result<bool> Solve(const Database& db_in, const Query& q);

/// Base case: the attack graph is a disjoint union of weak 2-cycles
/// covering all atoms. `db` must be purified relative to `q`.
Result<bool> SolveBase(const Database& db, const Query& q,
                       const AttackGraph& graph) {
  std::vector<std::pair<int, int>> cycles = graph.TwoCycles();
  // Every atom must sit in exactly one cycle.
  std::vector<bool> covered(q.size(), false);
  for (auto [i, j] : cycles) {
    if (covered[i] || covered[j]) {
      return Status::Internal("attack cycles are not disjoint");
    }
    covered[i] = covered[j] = true;
  }
  for (bool c : covered) {
    if (!c) return Status::Internal("unattacked-free graph must be cycles");
  }

  // Variables shared between distinct cycles.
  std::vector<VarSet> cycle_vars(cycles.size());
  for (size_t i = 0; i < cycles.size(); ++i) {
    VarSet a = q.atom(cycles[i].first).Vars();
    VarSet b = q.atom(cycles[i].second).Vars();
    cycle_vars[i].insert(a.begin(), a.end());
    cycle_vars[i].insert(b.begin(), b.end());
  }

  Database selected;  // ⋃ ⟦db_i⟧.
  for (size_t i = 0; i < cycles.size(); ++i) {
    const Atom& f = q.atom(cycles[i].first);
    const Atom& g = q.atom(cycles[i].second);
    Query qi;
    qi.AddAtom(f);
    qi.AddAtom(g);
    // x⃗_i: variables of this cycle occurring in another cycle, in a
    // fixed order.
    std::vector<SymbolId> shared;
    for (SymbolId v : cycle_vars[i]) {
      for (size_t j = 0; j < cycles.size(); ++j) {
        if (j != i && cycle_vars[j].count(v)) {
          shared.push_back(v);
          break;
        }
      }
    }
    // Partition db_i by the values of x⃗_i. Only the two cycle relations
    // participate, so iterate their per-relation fact lists instead of
    // scanning the whole database once per cycle.
    std::map<std::vector<SymbolId>, Database> partitions;
    std::vector<std::pair<const Atom*, const std::vector<int>*>> sources = {
        {&f, &db.FactsOf(f.relation())}, {&g, &db.FactsOf(g.relation())}};
    for (const auto& [atom, fact_ids] : sources) {
      for (int fact_id : *fact_ids) {
        const Fact& fact = db.facts()[fact_id];
        std::map<SymbolId, SymbolId> binding;
        if (!ExtractBinding(*atom, fact, &binding)) {
          // Purified databases only hold matchable facts.
          return Status::Internal("unmatchable fact in purified database");
        }
        std::vector<SymbolId> vec;
        vec.reserve(shared.size());
        for (SymbolId v : shared) {
          auto it = binding.find(v);
          if (it == binding.end()) {
            return Status::Internal(
                "shared cycle variable missing from key (Lemma 7)");
          }
          vec.push_back(it->second);
        }
        Status st = partitions[vec].AddFact(fact);
        if (!st.ok()) return st;
      }
    }
    // ⟦db_i⟧: partitions that are certain for q_i.
    TwoAtomSolver two_atom(qi);
    for (auto& [vec, part] : partitions) {
      Result<bool> certain = two_atom.IsCertain(part);
      if (!certain.ok()) return certain.status();
      if (*certain) {
        for (const Fact& fact : part.facts()) {
          Status st = selected.AddFact(fact);
          if (!st.ok()) return st;
        }
      }
    }
  }
  return Satisfies(selected, q);
}

Result<bool> Solve(const Database& db_in, const Query& q) {
  if (q.empty()) return true;  // Empty conjunction holds in every repair.
  Database db = Purify(db_in, q);
  if (db.empty()) return false;

  Result<AttackGraph> graph = AttackGraph::Compute(q);
  if (!graph.ok()) return graph.status();

  std::vector<int> unattacked = graph->UnattackedAtoms();
  if (unattacked.empty()) {
    return SolveBase(db, q, *graph);
  }

  int fi = unattacked.front();
  const Atom& f = q.atom(fi);
  std::vector<SymbolId> key_vars = DistinctKeyVars(f);

  // Candidate groundings a⃗ of key(F): the key projections of matching
  // facts (any other a⃗ purifies to the empty database => not certain).
  std::set<std::vector<SymbolId>> candidates;
  for (int fid : db.FactsOf(f.relation())) {
    std::map<SymbolId, SymbolId> binding;
    if (!ExtractBinding(f, db.facts()[fid], &binding)) continue;
    std::vector<SymbolId> vec;
    vec.reserve(key_vars.size());
    for (SymbolId v : key_vars) vec.push_back(binding.at(v));
    candidates.insert(vec);
  }

  for (const std::vector<SymbolId>& a : candidates) {
    Query q_a = q;
    Atom f_a = f;
    for (size_t i = 0; i < key_vars.size(); ++i) {
      q_a = q_a.Substitute(key_vars[i], a[i]);
      f_a = f_a.Substitute(key_vars[i], a[i]);
    }
    Database db_a = Purify(db, q_a);
    if (db_a.empty()) continue;

    // Lemma 8: eliminate F (its key is ground now). Every fact matching
    // F's pattern must leave a certain residue.
    bool all_residues_certain = true;
    bool some_match = false;
    for (int fid : db_a.FactsOf(f_a.relation())) {
      const Fact& fact = db_a.facts()[fid];
      std::map<SymbolId, SymbolId> binding;
      if (!ExtractBinding(f_a, fact, &binding)) continue;
      some_match = true;
      Query residue = q_a.WithoutAtom(q_a.AtomIndexByRelation(f.relation()));
      for (const auto& [var, value] : binding) {
        residue = residue.Substitute(var, value);
      }
      Result<bool> sub = Solve(db_a, residue);
      if (!sub.ok()) return sub.status();
      if (!*sub) {
        all_residues_certain = false;
        break;
      }
    }
    if (some_match && all_residues_certain) return true;
  }
  return false;
}

}  // namespace

namespace {

Status ValidateTheorem3(const Query& q) {
  if (q.HasSelfJoin()) {
    return Status::Unsupported("Theorem 3 assumes no self-join");
  }
  Result<AttackGraph> graph = AttackGraph::Compute(q);
  if (!graph.ok()) return graph.status();
  if (graph->HasStrongCycle() || !graph->AllCyclesTerminal()) {
    return Status::InvalidArgument(
        "Theorem 3 needs all attack cycles weak and terminal");
  }
  return Status::OK();
}

}  // namespace

TerminalCycleSolver::TerminalCycleSolver(Query q)
    : Solver(std::move(q)), validation_(ValidateTheorem3(query_)) {}

Result<SolverCall> TerminalCycleSolver::Decide(EvalContext& ctx) const {
  if (!validation_.ok()) return validation_;
  Result<bool> certain = Solve(ctx.db(), query_);
  if (!certain.ok()) return certain.status();
  SolverCall call;
  call.certain = *certain;
  return call;
}

}  // namespace cqa
