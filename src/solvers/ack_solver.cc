#include "solvers/ack_solver.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <map>

#include "core/classifier.h"
#include "core/cycles.h"
#include "cq/matcher.h"
#include "db/purify.h"

namespace cqa {

namespace internal {

int LayeredCycleSolver::VertexId(int layer, SymbolId constant) {
  auto key = std::make_pair(layer, constant);
  auto it = vertex_ids_.find(key);
  if (it != vertex_ids_.end()) return it->second;
  int id = static_cast<int>(vertices_.size());
  vertex_ids_.emplace(key, id);
  vertices_.push_back(key);
  adj_.emplace_back();
  return id;
}

void LayeredCycleSolver::AddEdge(int layer, SymbolId from, SymbolId to,
                                 int fact_id) {
  int u = VertexId(layer, from);
  int v = VertexId((layer + 1) % k_, to);
  adj_[u].push_back(Edge{v, fact_id});
}

void LayeredCycleSolver::ForbidCycle(const std::vector<SymbolId>& cycle) {
  assert(static_cast<int>(cycle.size()) == k_);
  forbidden_.insert(cycle);
}

std::optional<std::vector<int>> LayeredCycleSolver::FindFalsifyingChoice() {
  int n = num_vertices();
  if (n == 0) return std::vector<int>{};  // Empty repair falsifies q.

  Digraph g(n);
  for (int v = 0; v < n; ++v) {
    for (const Edge& e : adj_[v]) g[v].push_back(e.to);
  }
  std::vector<int> comp = TarjanScc(g);

  // marked_edge[v]: index into adj_[v] of the chosen outgoing edge.
  std::vector<int> marked_edge(n, -1);
  int num_comps = comp.empty() ? 0
                               : *std::max_element(comp.begin(), comp.end()) +
                                     1;

  for (int c = 0; c < num_comps; ++c) {
    std::vector<int> members;
    for (int v = 0; v < n; ++v) {
      if (comp[v] == c) members.push_back(v);
    }
    bool found_good = false;

    // Both searches walk exactly k edges from a layer-0 root. Every
    // k-cycle passes layer 0 exactly once, and every elementary cycle of
    // length > k also passes layer 0, so layer-0 roots are complete.
    std::vector<int> walk_vertices;  // a_1 .. a_{m+1} (root first).
    std::vector<int> walk_edges;     // Edge index taken at a_i.

    // Case A: a k-cycle that is not forbidden.
    std::function<bool(int, int)> FindFreeKCycle = [&](int root,
                                                       int v) -> bool {
      if (static_cast<int>(walk_edges.size()) == k_) {
        if (v != root) return false;
        std::vector<SymbolId> cycle(k_);
        for (int i = 0; i < k_; ++i) {
          cycle[i] = vertices_[walk_vertices[i]].second;
        }
        if (forbidden_.count(cycle)) return false;
        for (int i = 0; i < k_; ++i) {
          marked_edge[walk_vertices[i]] = walk_edges[i];
        }
        return true;
      }
      for (int ei = 0; ei < static_cast<int>(adj_[v].size()); ++ei) {
        int to = adj_[v][ei].to;
        if (comp[to] != c) continue;
        walk_vertices.push_back(to);
        walk_edges.push_back(ei);
        if (FindFreeKCycle(root, to)) return true;
        walk_vertices.pop_back();
        walk_edges.pop_back();
      }
      return false;
    };

    // Case B: an elementary cycle longer than k, via the paper's
    // criterion — a k-step walk a_1..a_{k+1} with a_1 != a_{k+1} and a
    // return path from a_{k+1} to a_1 avoiding {a_1..a_k} x V edges.
    std::function<bool(int, int)> FindLongCycle = [&](int root,
                                                      int v) -> bool {
      if (static_cast<int>(walk_edges.size()) == k_) {
        int tail = v;
        if (tail == root) return false;
        std::vector<char> walk_member(n, 0);
        for (int i = 0; i < k_; ++i) walk_member[walk_vertices[i]] = 1;
        std::vector<int> parent_vertex(n, -1), parent_edge(n, -1);
        std::deque<int> queue{tail};
        parent_vertex[tail] = tail;
        bool reached = false;
        while (!queue.empty() && !reached) {
          int cur = queue.front();
          queue.pop_front();
          if (walk_member[cur]) continue;  // Out-edges of the walk banned.
          for (int ei = 0; ei < static_cast<int>(adj_[cur].size()); ++ei) {
            int to = adj_[cur][ei].to;
            if (parent_vertex[to] != -1) continue;
            parent_vertex[to] = cur;
            parent_edge[to] = ei;
            if (to == root) {
              reached = true;
              break;
            }
            queue.push_back(to);
          }
        }
        if (!reached) return false;
        for (int i = 0; i < k_; ++i) {
          marked_edge[walk_vertices[i]] = walk_edges[i];
        }
        for (int cur = root; cur != tail;) {
          int pv = parent_vertex[cur];
          marked_edge[pv] = parent_edge[cur];
          cur = pv;
        }
        return true;
      }
      for (int ei = 0; ei < static_cast<int>(adj_[v].size()); ++ei) {
        int to = adj_[v][ei].to;
        if (comp[to] != c) continue;
        walk_vertices.push_back(to);
        walk_edges.push_back(ei);
        if (FindLongCycle(root, to)) return true;
        walk_vertices.pop_back();
        walk_edges.pop_back();
      }
      return false;
    };

    for (int root : members) {
      if (vertices_[root].first != 0) continue;
      walk_vertices.assign(1, root);
      walk_edges.clear();
      if (!forbid_all_ && FindFreeKCycle(root, root)) {
        found_good = true;
        break;
      }
      walk_vertices.assign(1, root);
      walk_edges.clear();
      if (FindLongCycle(root, root)) {
        found_good = true;
        break;
      }
    }

    if (!found_good) {
      // Some strong component admits no good cycle: every choice marks a
      // forbidden cycle, hence every repair satisfies q.
      return std::nullopt;
    }
  }

  // Extend the marked cycles to a full choice: every unmarked vertex
  // takes its first edge on a shortest path towards a marked vertex
  // (distances strictly decrease, so no new cycles are created).
  std::vector<int> dist(n, -1);
  std::deque<int> queue;
  // Reverse adjacency for the multi-source BFS.
  std::vector<std::vector<std::pair<int, int>>> radj(n);  // (from, edge idx)
  for (int v = 0; v < n; ++v) {
    for (int ei = 0; ei < static_cast<int>(adj_[v].size()); ++ei) {
      radj[adj_[v][ei].to].emplace_back(v, ei);
    }
  }
  for (int v = 0; v < n; ++v) {
    if (marked_edge[v] != -1) {
      dist[v] = 0;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    int cur = queue.front();
    queue.pop_front();
    for (auto [from, ei] : radj[cur]) {
      if (dist[from] == -1) {
        dist[from] = dist[cur] + 1;
        marked_edge[from] = ei;
        queue.push_back(from);
      }
    }
  }
  std::vector<int> choice;
  choice.reserve(n);
  for (int v = 0; v < n; ++v) {
    if (marked_edge[v] == -1) {
      // Unreachable vertex (cannot happen on purified inputs, where every
      // vertex shares a strong component with a marked cycle).
      return std::nullopt;
    }
    choice.push_back(adj_[v][marked_edge[v]].fact_id);
  }
  return choice;
}

}  // namespace internal

namespace {

struct AckInstance {
  internal::LayeredCycleSolver solver;
  Database purified;
  std::vector<Fact> removed_witnesses;
  SymbolId s_relation = 0;
};

Result<AckInstance> BuildInstance(const Database& db, const Query& q,
                                  const std::optional<AckShape>& shape) {
  if (!shape.has_value()) {
    return Status::InvalidArgument("query does not match AC(k)");
  }
  int k = shape->cycle.k;
  AckInstance inst{internal::LayeredCycleSolver(k), Database(), {}, 0};
  inst.purified = Purify(db, q, &inst.removed_witnesses);
  inst.s_relation = q.atom(shape->s_atom).relation();

  // Layer of each R relation: position of its key variable in the cycle.
  std::map<SymbolId, int> layer_of;
  for (int i = 0; i < k; ++i) {
    layer_of[q.atom(shape->cycle.atom_order[i]).relation()] = i;
  }
  for (int fid = 0; fid < inst.purified.size(); ++fid) {
    const Fact& f = inst.purified.facts()[fid];
    auto it = layer_of.find(f.relation());
    if (it != layer_of.end()) {
      inst.solver.AddEdge(it->second, f.values()[0], f.values()[1], fid);
    } else if (f.relation() == inst.s_relation) {
      inst.solver.ForbidCycle(f.values());
    }
  }
  return inst;
}

}  // namespace

AckSolver::AckSolver(Query q)
    : Solver(std::move(q)), shape_(MatchAckPattern(query_)) {}

Result<SolverCall> AckSolver::Decide(EvalContext& ctx) const {
  Result<AckInstance> inst = BuildInstance(ctx.db(), query_, shape_);
  if (!inst.ok()) return inst.status();
  SolverCall call;
  call.certain = !inst->solver.FindFalsifyingChoice().has_value();
  return call;
}

Result<std::optional<std::vector<Fact>>> AckSolver::FindFalsifyingRepair(
    EvalContext& ctx) const {
  Result<AckInstance> inst = BuildInstance(ctx.db(), query_, shape_);
  if (!inst.ok()) return inst.status();
  SolverCall call;
  call.certain = false;  // updated below once the choice is known
  std::optional<std::vector<int>> choice =
      inst->solver.FindFalsifyingChoice();
  call.certain = !choice.has_value();
  stats_.Record(call);
  if (!choice.has_value()) return std::optional<std::vector<Fact>>();
  std::vector<Fact> repair;
  // Chosen R facts (one per R block, i.e. per vertex).
  for (int fid : *choice) repair.push_back(inst->purified.facts()[fid]);
  // All S facts (all-key: singleton blocks belong to every repair).
  for (const Fact& f : inst->purified.facts()) {
    if (f.relation() == inst->s_relation) repair.push_back(f);
  }
  // Witnesses of blocks removed during purification (Lemma 1 lift).
  for (const Fact& f : inst->removed_witnesses) repair.push_back(f);
  return std::optional<std::vector<Fact>>(std::move(repair));
}

}  // namespace cqa
