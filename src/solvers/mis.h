#ifndef CQA_SOLVERS_MIS_H_
#define CQA_SOLVERS_MIS_H_

#include <cstdint>
#include <vector>

/// \file
/// Exact maximum independent set by branch and bound with a greedy
/// clique-cover upper bound. Sound and complete on every graph;
/// worst-case exponential. The two-atom solver calls this only on the
/// conflict graphs whose conflicts do not form a matching — those graphs
/// are claw-free by construction, where Minty's algorithm would give a
/// polynomial bound (future work; see DESIGN.md §6).

namespace cqa {

class MaxIndependentSet {
 public:
  explicit MaxIndependentSet(int n) : n_(n), adj_(n) {}

  void AddEdge(int u, int v);

  /// Size of a maximum independent set.
  int Solve();

  /// Vertices of the maximum independent set found by Solve().
  const std::vector<int>& best_set() const { return best_set_; }

  /// Search nodes explored (for benchmark reporting).
  int64_t nodes() const { return nodes_; }

 private:
  void Search(std::vector<int> candidates, std::vector<int>* current);
  int UpperBound(const std::vector<int>& candidates) const;

  int n_;
  std::vector<std::vector<char>> adj_;
  std::vector<int> best_set_;
  int64_t nodes_ = 0;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_MIS_H_
