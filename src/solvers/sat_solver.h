#ifndef CQA_SOLVERS_SAT_SOLVER_H_
#define CQA_SOLVERS_SAT_SOLVER_H_

#include <optional>
#include <vector>

#include "cq/query.h"
#include "db/database.h"

/// \file
/// Decides CERTAINTY(q) by searching for a falsifying repair with a SAT
/// solver. Encoding:
///   * one boolean per fact ("chosen by the repair"),
///   * exactly-one constraints per block,
///   * for every embedding θ(q) ⊆ db, the clause ¬⋀ θ(q)
///     ("the repair must not contain all facts of any embedding").
/// The formula is satisfiable iff some repair falsifies q, i.e. iff
/// db ∉ CERTAINTY(q). Sound and complete for *every* conjunctive query;
/// worst-case exponential (as expected: Theorem 2 queries are
/// coNP-complete), but far faster than enumerating repairs.

namespace cqa {

class SatSolver {
 public:
  /// True iff every repair satisfies q.
  static bool IsCertain(const Database& db, const Query& q);

  /// A repair falsifying q, if any.
  static std::optional<std::vector<Fact>> FindFalsifyingRepair(
      const Database& db, const Query& q);

  /// Encoding statistics from the last call (single-threaded use).
  struct Stats {
    int vars = 0;
    int clauses = 0;
    int64_t decisions = 0;
  };
  static const Stats& last_stats() { return stats_; }

 private:
  static Stats stats_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_SAT_SOLVER_H_
