#ifndef CQA_SOLVERS_SAT_SOLVER_H_
#define CQA_SOLVERS_SAT_SOLVER_H_

#include <optional>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "solvers/solver.h"

/// \file
/// Decides CERTAINTY(q) by searching for a falsifying repair with a SAT
/// solver. Encoding:
///   * one boolean per fact ("chosen by the repair"),
///   * exactly-one constraints per block,
///   * for every embedding θ(q) ⊆ db, the clause ¬⋀ θ(q)
///     ("the repair must not contain all facts of any embedding").
/// The formula is satisfiable iff some repair falsifies q, i.e. iff
/// db ∉ CERTAINTY(q). Sound and complete for *every* conjunctive query;
/// worst-case exponential (as expected: Theorem 2 queries are
/// coNP-complete), but far faster than enumerating repairs.
///
/// Encoding statistics (variables, clauses, DPLL decisions) are reported
/// per call through `SolverCall` and accumulated per instance — there is
/// no global mutable state, so one SatSolver can serve many threads.

namespace cqa {

class SatSolver final : public Solver {
 public:
  explicit SatSolver(Query q) : Solver(std::move(q)) {}

  SolverKind kind() const override { return SolverKind::kSat; }

  Result<SolverCall> Decide(EvalContext& ctx) const override;

  using Solver::FindFalsifyingRepair;
  Result<std::optional<std::vector<Fact>>> FindFalsifyingRepair(
      EvalContext& ctx) const override;

  /// The shared encode-and-solve core: a repair of ctx.db() falsifying
  /// `q`, with the encoding metrics written to `call`. Used by this class
  /// and as the universal fallback of Solver::FindFalsifyingRepair.
  static std::optional<std::vector<Fact>> SearchFalsifyingRepair(
      EvalContext& ctx, const Query& q, SolverCall* call);
};

}  // namespace cqa

#endif  // CQA_SOLVERS_SAT_SOLVER_H_
