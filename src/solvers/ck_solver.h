#ifndef CQA_SOLVERS_CK_SOLVER_H_
#define CQA_SOLVERS_CK_SOLVER_H_

#include <optional>

#include "core/classifier.h"
#include "cq/query.h"
#include "db/database.h"
#include "solvers/solver.h"
#include "util/status.h"

/// \file
/// CERTAINTY(C(k)) in polynomial time (Corollary 1). The paper settles
/// the k >= 3 case — open since Fuxman–Miller — by reducing C(k) to
/// AC(k): Lemma 9 pads the database with an all-key S_k relation holding
/// every tuple of D^k. Two implementations are provided:
///  * `Decide`: the specialized solver; with S_k = D^k every k-cycle
///    is forbidden, so no materialization is needed (the |D|^k blow-up of
///    the generic reduction is avoided);
///  * `IsCertainViaLemma9`: the literal reduction (materializes S_k);
///    exponential in k, used by the tests to validate Lemma 9 itself.

namespace cqa {

class CkSolver final : public Solver {
 public:
  /// `q` must match C(k) up to renaming (k >= 2; for k = 2 the query is
  /// acyclic but the same algorithm applies). The shape is recognized
  /// here, once; Decide reuses it per call.
  explicit CkSolver(Query q);

  SolverKind kind() const override { return SolverKind::kCk; }

  /// Decides db ∈ CERTAINTY(q) without materializing S_k.
  Result<SolverCall> Decide(EvalContext& ctx) const override;

  /// The literal Lemma 9 reduction: pads db with S_k = D^k and runs the
  /// AC(k) solver. Only sensible for small |D| and k.
  Result<bool> IsCertainViaLemma9(const Database& db) const;

 private:
  std::optional<CkShape> shape_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_CK_SOLVER_H_
