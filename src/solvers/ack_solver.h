#ifndef CQA_SOLVERS_ACK_SOLVER_H_
#define CQA_SOLVERS_ACK_SOLVER_H_

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/classifier.h"
#include "cq/query.h"
#include "db/database.h"
#include "solvers/solver.h"
#include "util/status.h"

/// \file
/// The Theorem 4 algorithm: CERTAINTY(AC(k)) in polynomial time. The
/// R_i facts of a purified database form a k-partite digraph over typed
/// vertices (layer, constant); S_k facts designate *forbidden* k-cycles.
/// db is NOT certain iff one outgoing edge can be marked per vertex
/// without fully marking a forbidden cycle — condition (5) — which the
/// algorithm tests per strong component by searching for a "good" cycle:
/// a k-cycle not in C, or an elementary cycle longer than k (found with
/// the paper's walk-plus-avoiding-return-path criterion). When all
/// components have one, a falsifying repair is assembled by marking
/// shortest paths into the good cycles.

namespace cqa {

namespace internal {

/// The layered-digraph engine shared by AckSolver and CkSolver.
class LayeredCycleSolver {
 public:
  /// `k` layers; vertices are (layer, constant) pairs created on demand.
  explicit LayeredCycleSolver(int k) : k_(k) {}

  /// Edge (layer, a) -> (layer+1 mod k, b) carrying `fact_id`.
  void AddEdge(int layer, SymbolId from, SymbolId to, int fact_id);

  /// Marks the k-cycle (a_0, ..., a_{k-1}) (a_i at layer i) as forbidden.
  void ForbidCycle(const std::vector<SymbolId>& cycle);

  /// When true, every k-cycle is forbidden regardless of ForbidCycle
  /// calls — the C(k) regime of Corollary 1 / Lemma 9 (S_k = D^k).
  void ForbidAllKCycles() { forbid_all_ = true; }

  /// Fact ids of a falsifying choice (one outgoing edge per vertex,
  /// avoiding forbidden cycles), or nullopt when none exists — i.e.
  /// nullopt means "certain". Empty graphs return a (trivially empty)
  /// choice: the empty repair falsifies the query.
  std::optional<std::vector<int>> FindFalsifyingChoice();

  int num_vertices() const { return static_cast<int>(adj_.size()); }

 private:
  struct Edge {
    int to;
    int fact_id;
  };

  int VertexId(int layer, SymbolId constant);

  int k_;
  bool forbid_all_ = false;
  std::map<std::pair<int, SymbolId>, int> vertex_ids_;
  std::vector<std::pair<int, SymbolId>> vertices_;  // id -> (layer, const)
  std::vector<std::vector<Edge>> adj_;
  std::set<std::vector<SymbolId>> forbidden_;
};

}  // namespace internal

class AckSolver final : public Solver {
 public:
  /// `q` must match AC(k) up to renaming; the shape is recognized here,
  /// once, and reused by every Decide/FindFalsifyingRepair call.
  explicit AckSolver(Query q);

  SolverKind kind() const override { return SolverKind::kAck; }

  /// Decides db ∈ CERTAINTY(q) via condition (5) of Theorem 4.
  Result<SolverCall> Decide(EvalContext& ctx) const override;

  /// A falsifying repair of `db` (one fact per block of the *original*
  /// database), or nullopt when db is certain — the native Theorem 4
  /// witness extraction, no SAT fallback.
  using Solver::FindFalsifyingRepair;
  Result<std::optional<std::vector<Fact>>> FindFalsifyingRepair(
      EvalContext& ctx) const override;

 private:
  std::optional<AckShape> shape_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_ACK_SOLVER_H_
