#include "solvers/fo_solver.h"

#include <utility>

#include "fo/rewriter.h"

namespace cqa {

Result<FoSolver> FoSolver::Create(const Query& q) {
  return Create(q, VarSet());
}

Result<FoSolver> FoSolver::Create(const Query& q, const VarSet& params) {
  Result<FormulaPtr> rewriting = CertainRewriting(q, params);
  if (!rewriting.ok()) return rewriting.status();
  // Lower once at compile time; the rewriter emits well-scoped formulas
  // whose free variables are exactly `params`, so lowering cannot fail.
  std::vector<SymbolId> param_order(params.begin(), params.end());
  Result<FoProgram> program = FoProgram::Lower(*rewriting, param_order);
  if (!program.ok()) return program.status();
  return FoSolver(q, std::move(rewriting).value(),
                  std::make_shared<const FoProgram>(std::move(*program)));
}

Result<SolverCall> FoSolver::Decide(EvalContext& ctx) const {
  SolverCall call;
  if (DefaultFoExecMode() == FoExecMode::kProgram && program_->params().empty()) {
    static const std::vector<SymbolId> kNoAdom;
    const std::vector<SymbolId>& adom =
        program_->needs_adom() ? ctx.evaluator().adom() : kNoAdom;
    call.certain = program_->EvaluateBool(ctx.fact_index(), adom);
  } else {
    call.certain = ctx.evaluator().Eval(rewriting_);
  }
  return call;
}

bool FoSolver::IsCertainRow(const FormulaEvaluator& evaluator,
                            const Valuation& params_binding) const {
  return evaluator.Eval(rewriting_, params_binding);
}

}  // namespace cqa
