#include "solvers/fo_solver.h"

#include "fo/rewriter.h"

namespace cqa {

Result<FoSolver> FoSolver::Create(const Query& q) {
  return Create(q, VarSet());
}

Result<FoSolver> FoSolver::Create(const Query& q, const VarSet& params) {
  Result<FormulaPtr> rewriting = CertainRewriting(q, params);
  if (!rewriting.ok()) return rewriting.status();
  return FoSolver(q, std::move(rewriting).value());
}

Result<SolverCall> FoSolver::Decide(EvalContext& ctx) const {
  SolverCall call;
  call.certain = ctx.evaluator().Eval(rewriting_);
  return call;
}

bool FoSolver::IsCertainRow(const FormulaEvaluator& evaluator,
                            const Valuation& params_binding) const {
  return evaluator.Eval(rewriting_, params_binding);
}

}  // namespace cqa
