#include "solvers/fo_solver.h"

#include "fo/rewriter.h"

namespace cqa {

Result<FoSolver> FoSolver::Create(const Query& q) {
  return Create(q, VarSet());
}

Result<FoSolver> FoSolver::Create(const Query& q, const VarSet& params) {
  Result<FormulaPtr> rewriting = CertainRewriting(q, params);
  if (!rewriting.ok()) return rewriting.status();
  return FoSolver(std::move(rewriting).value());
}

bool FoSolver::IsCertain(const Database& db) const {
  FormulaEvaluator evaluator(db);
  return evaluator.Eval(rewriting_);
}

bool FoSolver::IsCertain(const FormulaEvaluator& evaluator,
                         const Valuation& params_binding) const {
  return evaluator.Eval(rewriting_, params_binding);
}

}  // namespace cqa
