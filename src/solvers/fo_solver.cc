#include "solvers/fo_solver.h"

#include "fo/evaluator.h"
#include "fo/rewriter.h"

namespace cqa {

Result<FoSolver> FoSolver::Create(const Query& q) {
  Result<FormulaPtr> rewriting = CertainRewriting(q);
  if (!rewriting.ok()) return rewriting.status();
  return FoSolver(std::move(rewriting).value());
}

bool FoSolver::IsCertain(const Database& db) const {
  FormulaEvaluator evaluator(db);
  return evaluator.Eval(rewriting_);
}

}  // namespace cqa
