#ifndef CQA_SOLVERS_SOLVER_H_
#define CQA_SOLVERS_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string_view>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "fo/evaluator.h"
#include "util/status.h"

/// \file
/// The unified solver layer. Every CERTAINTY(q) decision procedure in the
/// library is an instance of the polymorphic `Solver` interface: it is
/// constructed from (and owns) its query, carries per-instance atomic
/// statistics, and decides databases handed to it at call time. Instances
/// are immutable after construction and safe to share across threads —
/// this is what lets a compiled `QueryPlan` serve concurrent traffic.
///
/// Solvers are created through the `SolverRegistry`, keyed by
/// `SolverKind`; the registry is how the plan compiler maps a complexity
/// class to an implementation, and how tests substitute instrumented
/// solvers without touching the dispatch.
///
/// `EvalContext` bundles the per-thread evaluation state (a lazily built
/// `FactIndex` and `FormulaEvaluator` for one database) so a batch worker
/// reuses one set of indexes across every query it serves instead of
/// rebuilding them per call.

namespace cqa {

/// Identity of a decision procedure. Replaces the old stringly-typed
/// `SolveOutcome::solver` so dispatch tests cannot silently pass on a
/// typo.
enum class SolverKind {
  kFoRewriting,
  kTerminalCycles,
  kAck,
  kCk,
  kSat,
  kOracle,
};

/// Stable wire/display name: "fo-rewriting", "terminal-cycles", "ack",
/// "ck", "sat", "oracle".
const char* ToString(SolverKind kind);

std::ostream& operator<<(std::ostream& os, SolverKind kind);

/// Inverse of ToString; nullopt for unknown names.
std::optional<SolverKind> SolverKindFromString(std::string_view name);

/// Per-call result and metrics of one certainty decision. The SAT fields
/// stay zero off the SAT path.
struct SolverCall {
  bool certain = false;
  int64_t sat_vars = 0;
  int64_t sat_clauses = 0;
  int64_t sat_decisions = 0;
};

/// Per-instance accumulated statistics. Atomic so a solver shared by a
/// plan can be probed while worker threads are using it; copyable so
/// value-semantic solvers (Result<FoSolver>) keep working.
struct SolverStats {
  std::atomic<int64_t> calls{0};
  std::atomic<int64_t> certain{0};
  std::atomic<int64_t> sat_vars{0};
  std::atomic<int64_t> sat_clauses{0};
  std::atomic<int64_t> sat_decisions{0};

  SolverStats() = default;
  SolverStats(const SolverStats& o) { *this = o; }
  SolverStats& operator=(const SolverStats& o);

  /// Plain-value copy for reporting.
  struct Snapshot {
    int64_t calls = 0;
    int64_t certain = 0;
    int64_t sat_vars = 0;
    int64_t sat_clauses = 0;
    int64_t sat_decisions = 0;
  };
  Snapshot snapshot() const;

  void Record(const SolverCall& call);
};

/// Per-thread evaluation state for one database: the database reference
/// plus lazily built, reusable indexes. Not thread-safe — each serving
/// worker owns one. The solvers that can exploit shared indexes (FO
/// evaluation, SAT embedding enumeration) pull them from here; the rest
/// just read `db()`.
class EvalContext {
 public:
  explicit EvalContext(const Database& db) : db_(db) {}

  const Database& db() const { return db_; }

  /// Lazily built hash index over db's facts, shared across calls.
  FactIndex& fact_index();

  /// Lazily built FO evaluator. Borrows fact_index() (one set of
  /// buckets per context, not two) and snapshots the active domain.
  const FormulaEvaluator& evaluator();

  // ----------------------------------------------- serving-session hooks
  // A long-lived serving `Session` keeps one EvalContext per worker and
  // patches the lazily built state in place after each database delta
  // instead of rebuilding it (see serve/session.cc). State that was
  // never built needs no patching: its first use reads the post-delta
  // database.

  /// The fact index, when already built (null otherwise).
  FactIndex* fact_index_if_built() {
    return index_.has_value() ? &*index_ : nullptr;
  }

  /// The FO evaluator, when already built (null otherwise). Mutable so
  /// the session can swap in the post-delta active domain.
  FormulaEvaluator* evaluator_if_built() {
    return evaluator_.has_value() ? &*evaluator_ : nullptr;
  }

 private:
  const Database& db_;
  std::optional<FactIndex> index_;
  std::optional<FormulaEvaluator> evaluator_;
};

/// The unified interface all decision procedures implement. A solver is
/// bound to one query at construction; `Decide` answers db ∈
/// CERTAINTY(q). Implementations must be const-thread-safe: `Decide` and
/// `FindFalsifyingRepair` may run concurrently on one instance.
class Solver {
 public:
  explicit Solver(Query q) : query_(std::move(q)) {}
  virtual ~Solver() = default;

  virtual SolverKind kind() const = 0;
  std::string_view name() const { return ToString(kind()); }
  const Query& query() const { return query_; }

  /// Decides ctx.db() ∈ CERTAINTY(query()) and reports per-call metrics.
  virtual Result<SolverCall> Decide(EvalContext& ctx) const = 0;

  /// A repair of ctx.db() falsifying query(), or nullopt when certain.
  /// The default implementation runs the sound-and-complete SAT search;
  /// solvers with a native witness extraction (Ack) override it.
  virtual Result<std::optional<std::vector<Fact>>> FindFalsifyingRepair(
      EvalContext& ctx) const;

  /// Convenience entry points creating a one-shot context. These also
  /// accumulate the per-instance stats().
  Result<bool> IsCertain(const Database& db) const;
  Result<bool> IsCertain(EvalContext& ctx) const;
  Result<std::optional<std::vector<Fact>>> FindFalsifyingRepair(
      const Database& db) const;

  /// Accumulated per-instance statistics (never global, never static).
  SolverStats::Snapshot stats() const { return stats_.snapshot(); }

  /// Accumulates one call into stats(). Exposed for callers that drive
  /// Decide directly to harvest the per-call metrics (QueryPlan::Solve).
  void Record(const SolverCall& call) const { stats_.Record(call); }

 protected:
  Query query_;
  mutable SolverStats stats_;
};

/// Factory: builds a solver of some kind for `q`. `params` is only
/// meaningful for compile-time-parameterized solvers (the FO rewriting);
/// the rest ignore it. Construction is cheap for the P-time solvers
/// (validation happens at Decide time); the FO factory runs the rewriter
/// and fails on cyclic attack graphs.
using SolverFactory = std::function<Result<std::unique_ptr<Solver>>(
    const Query& q, const VarSet& params)>;

/// Registry of solver implementations, keyed by SolverKind. The global
/// registry comes pre-populated with the library's six solvers; tests and
/// extensions may re-register a kind to substitute an implementation.
class SolverRegistry {
 public:
  /// The process-wide registry with the built-ins registered.
  static SolverRegistry& Global();

  /// Registers (or replaces) the factory for `kind`.
  void Register(SolverKind kind, SolverFactory factory);

  /// Builds a solver for `q`. Fails when no factory is registered or the
  /// factory rejects the query.
  Result<std::unique_ptr<Solver>> Create(SolverKind kind, const Query& q,
                                         const VarSet& params = {}) const;

  /// The registered factory for `kind` (empty when none). Lets a plan
  /// capture the factory once at compile time instead of taking the
  /// registry lock on every per-row Create.
  SolverFactory Factory(SolverKind kind) const;

  /// Registered kinds, in enum order.
  std::vector<SolverKind> kinds() const;

 private:
  SolverRegistry();

  mutable std::mutex mu_;
  std::map<SolverKind, SolverFactory> factories_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_SOLVER_H_
