#ifndef CQA_SOLVERS_CONP_REDUCTION_H_
#define CQA_SOLVERS_CONP_REDUCTION_H_

#include <map>

#include "cq/query.h"
#include "db/database.h"
#include "util/status.h"

/// \file
/// The Theorem 2 reduction: for any acyclic self-join-free query q whose
/// attack graph has a strong cycle, CERTAINTY(q0) reduces in polynomial
/// time to CERTAINTY(q), where q0 = {R0(x,y), S0(y,z,x)} is the
/// coNP-complete query of Kolaitis–Pema. The construction picks a strong
/// 2-cycle F ⇄ G (Lemma 4), assigns every variable of q to one of six
/// Venn regions of (F^{+,q}, G^{+,q}, F^{⊙,q}) — Fig. 3 — and maps each
/// valuation θ over {x,y,z} to a valuation θ̂ over vars(q) whose values
/// are 'd', θ(x), θ(y), ⟨θ(y),θ(z)⟩, ⟨θ(x),θ(y)⟩ or ⟨θ(x),θ(y),θ(z)⟩
/// depending on the region. Then db = {θ̂(H) | H ∈ q, θ ∈ V} satisfies
///   db0 ∈ CERTAINTY(q0) ⟺ db ∈ CERTAINTY(q).

namespace cqa {

class ConpReduction {
 public:
  /// Builds the reduction for `q`. Fails unless q is acyclic,
  /// self-join-free, and its attack graph contains a strong cycle.
  static Result<ConpReduction> Create(const Query& q);

  /// Maps an instance db0 of CERTAINTY(q0) to an instance of
  /// CERTAINTY(q). db0 is purified internally, as in the proof.
  Result<Database> Transform(const Database& db0) const;

  /// The atoms chosen as the strong 2-cycle F ⇄ G.
  int f_atom() const { return f_; }
  int g_atom() const { return g_; }

  /// Region index (1..6, matching the list in the proof) per variable.
  const std::map<SymbolId, int>& regions() const { return regions_; }

 private:
  ConpReduction(Query q, int f, int g, std::map<SymbolId, int> regions)
      : query_(std::move(q)), f_(f), g_(g), regions_(std::move(regions)) {}

  Query query_;
  int f_;
  int g_;
  std::map<SymbolId, int> regions_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_CONP_REDUCTION_H_
