#include "solvers/conp_reduction.h"

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/attack_graph.h"
#include "cq/corpus.h"
#include "cq/matcher.h"
#include "db/purify.h"

namespace cqa {

Result<ConpReduction> ConpReduction::Create(const Query& q) {
  if (q.HasSelfJoin()) {
    return Status::Unsupported("Theorem 2 assumes no self-join");
  }
  Result<AttackGraph> graph = AttackGraph::Compute(q);
  if (!graph.ok()) return graph.status();

  // Lemma 4: a strong cycle implies a strong 2-cycle. Orient so that the
  // strong attack goes F -> G.
  int f = -1, g = -1;
  for (auto [i, j] : graph->TwoCycles()) {
    if (graph->IsStrongAttack(i, j)) {
      f = i;
      g = j;
      break;
    }
    if (graph->IsStrongAttack(j, i)) {
      f = j;
      g = i;
      break;
    }
  }
  if (f == -1) {
    return Status::InvalidArgument(
        "attack graph has no strong cycle: Theorem 2 does not apply");
  }

  // Venn regions of (F+, G+, F⊙) — Fig. 3. Note F+ ⊆ F⊙.
  const VarSet& f_plus = graph->PlusClosure(f);
  const VarSet& g_plus = graph->PlusClosure(g);
  const VarSet& f_circ = graph->CircClosure(f);
  std::map<SymbolId, int> regions;
  for (SymbolId u : q.Vars()) {
    bool in_f = f_plus.count(u) > 0;
    bool in_g = g_plus.count(u) > 0;
    bool in_c = f_circ.count(u) > 0;
    int region;
    if (in_f && in_g) {
      region = 1;  // 'd'
    } else if (in_f) {
      region = 2;  // θ(x)
    } else if (in_g && !in_c) {
      region = 3;  // ⟨θ(y),θ(z)⟩
    } else if (in_g) {
      region = 4;  // θ(y)
    } else if (in_c) {
      region = 5;  // ⟨θ(x),θ(y)⟩
    } else {
      region = 6;  // ⟨θ(x),θ(y),θ(z)⟩
    }
    regions.emplace(u, region);
  }
  return ConpReduction(q, f, g, std::move(regions));
}

Result<Database> ConpReduction::Transform(const Database& db0) const {
  Query q0 = corpus::Q0();
  // Variable ids of x, y, z in q0: R0(x | y), S0(y, z | x).
  SymbolId x = q0.atom(0).terms()[0].id();
  SymbolId y = q0.atom(0).terms()[1].id();
  SymbolId z = q0.atom(1).terms()[1].id();

  Database purified = Purify(db0, q0);
  Database out;

  // Tuple constants are memoized by id pair/triple: embeddings repeat the
  // same (a, b, c) projections, and building the "<a,b,c>" spelling just
  // to rediscover an interned id is the transform's inner-loop cost.
  std::unordered_map<uint64_t, SymbolId> memo2;
  auto tuple2 = [&memo2](SymbolId a, SymbolId b) {
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    auto [it, fresh] = memo2.try_emplace(key, 0);
    if (fresh) {
      it->second =
          InternSymbol("<" + SymbolName(a) + "," + SymbolName(b) + ">");
    }
    return it->second;
  };
  std::unordered_map<SymbolId, std::unordered_map<uint64_t, SymbolId>> memo3;
  auto tuple3 = [&memo3](SymbolId a, SymbolId b, SymbolId c) {
    uint64_t key = (static_cast<uint64_t>(b) << 32) | c;
    auto [it, fresh] = memo3[a].try_emplace(key, 0);
    if (fresh) {
      it->second = InternSymbol("<" + SymbolName(a) + "," + SymbolName(b) +
                                "," + SymbolName(c) + ">");
    }
    return it->second;
  };
  SymbolId d = InternSymbol("d");

  FactIndex index(purified);
  Status status = Status::OK();
  ForEachEmbedding(index, q0, Valuation(), [&](const Valuation& theta) {
    SymbolId a = *theta.Get(x);
    SymbolId b = *theta.Get(y);
    SymbolId c = *theta.Get(z);
    auto value_of = [&](SymbolId u) {
      switch (regions_.at(u)) {
        case 1: return d;
        case 2: return a;
        case 3: return tuple2(b, c);
        case 4: return b;
        case 5: return tuple2(a, b);
        default: return tuple3(a, b, c);
      }
    };
    for (const Atom& h : query_.atoms()) {
      std::vector<SymbolId> values;
      values.reserve(h.terms().size());
      for (const Term& t : h.terms()) {
        values.push_back(t.is_const() ? t.id() : value_of(t.id()));
      }
      Status st = out.AddFact(Fact(h.relation(), std::move(values),
                                   h.key_arity()));
      if (!st.ok()) {
        status = st;
        return false;
      }
    }
    return true;
  });
  if (!status.ok()) return status;
  return out;
}

}  // namespace cqa
