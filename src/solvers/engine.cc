#include "solvers/engine.h"

#include <algorithm>
#include <set>

#include "cq/matcher.h"
#include "solvers/ack_solver.h"
#include "solvers/ck_solver.h"
#include "solvers/fo_solver.h"
#include "solvers/sat_solver.h"
#include "solvers/terminal_cycle_solver.h"

namespace cqa {

Result<SolveOutcome> Engine::Solve(const Database& db, const Query& q) {
  Result<Classification> cls = ClassifyQuery(q);
  if (!cls.ok()) {
    // Unsupported fragment (self-join, non-C(k) cyclic query): fall back
    // to the sound-and-complete SAT search, but report the failure cause
    // for genuinely malformed queries.
    if (cls.status().code() != StatusCode::kUnsupported) {
      return cls.status();
    }
    SolveOutcome out;
    out.certain = SatSolver::IsCertain(db, q);
    out.complexity = ComplexityClass::kOpenConjecturedPtime;
    out.solver = "sat";
    return out;
  }

  SolveOutcome out;
  out.complexity = cls->complexity;
  switch (cls->complexity) {
    case ComplexityClass::kFirstOrder: {
      Result<FoSolver> fo = FoSolver::Create(q);
      if (!fo.ok()) return fo.status();
      out.certain = fo->IsCertain(db);
      out.solver = "fo-rewriting";
      return out;
    }
    case ComplexityClass::kPtimeTerminalCycles: {
      Result<bool> r = TerminalCycleSolver::IsCertain(db, q);
      if (!r.ok()) return r.status();
      out.certain = *r;
      out.solver = "terminal-cycles";
      return out;
    }
    case ComplexityClass::kPtimeAck: {
      Result<bool> r = AckSolver::IsCertain(db, q);
      if (!r.ok()) return r.status();
      out.certain = *r;
      out.solver = "ack";
      return out;
    }
    case ComplexityClass::kPtimeCk: {
      Result<bool> r = CkSolver::IsCertain(db, q);
      if (!r.ok()) return r.status();
      out.certain = *r;
      out.solver = "ck";
      return out;
    }
    case ComplexityClass::kConpComplete:
    case ComplexityClass::kOpenConjecturedPtime: {
      out.certain = SatSolver::IsCertain(db, q);
      out.solver = "sat";
      return out;
    }
  }
  return Status::Internal("unreachable");
}

Result<std::vector<std::vector<SymbolId>>> Engine::PossibleAnswers(
    const Database& db, const Query& q,
    const std::vector<SymbolId>& free_vars) {
  VarSet query_vars = q.Vars();
  for (SymbolId v : free_vars) {
    if (query_vars.count(v) == 0) {
      return Status::InvalidArgument(
          "free variable '" + SymbolName(v) +
          "' does not occur in the query " + q.ToString());
    }
  }
  std::set<std::vector<SymbolId>> answers;
  FactIndex index(db);
  ForEachEmbedding(index, q, Valuation(), [&](const Valuation& theta) {
    std::vector<SymbolId> row;
    row.reserve(free_vars.size());
    for (SymbolId v : free_vars) {
      // Occurrence in q guarantees every embedding binds v.
      row.push_back(*theta.Get(v));
    }
    answers.insert(std::move(row));
    return true;
  });
  return std::vector<std::vector<SymbolId>>(answers.begin(), answers.end());
}

Result<std::optional<std::vector<Fact>>> Engine::FindFalsifyingRepair(
    const Database& db, const Query& q) {
  if (MatchAckPattern(q).has_value()) {
    return AckSolver::FindFalsifyingRepair(db, q);
  }
  return std::optional<std::vector<Fact>>(
      SatSolver::FindFalsifyingRepair(db, q));
}

namespace {

/// Per-query compile cache for CertainAnswers: classification (and, on
/// the FO path, the parameterized rewriting) of q with the free
/// variables frozen. Grounding the parameters cannot add attacks
/// (Lemma 5), and the attack graph ignores constant identity, so one
/// classification is valid for every candidate row.
struct CompiledQuery {
  /// nullopt: unsupported fragment, every row uses the SAT search.
  std::optional<ComplexityClass> complexity;
  /// Set iff the frozen query is FO: one rewriting for all rows.
  std::optional<FoSolver> fo;
};

Result<CompiledQuery> CompileForParams(
    const Query& q, const std::vector<SymbolId>& free_vars) {
  VarSet params(free_vars.begin(), free_vars.end());
  Query frozen = q;
  for (SymbolId v : params) {
    frozen = frozen.Substitute(v, InternSymbol("$param_" + SymbolName(v)));
  }
  CompiledQuery out;
  Result<Classification> cls = ClassifyQuery(frozen);
  if (!cls.ok()) {
    if (cls.status().code() != StatusCode::kUnsupported) {
      return cls.status();
    }
    return out;  // SAT fallback, mirroring Solve.
  }
  out.complexity = cls->complexity;
  if (cls->complexity == ComplexityClass::kFirstOrder) {
    Result<FoSolver> fo = FoSolver::Create(q, params);
    if (!fo.ok()) return fo.status();
    out.fo.emplace(std::move(fo).value());
  }
  return out;
}

/// Decides one ground row with the pre-compiled dispatch (non-FO paths).
/// A specialized solver whose precondition drifted under grounding falls
/// back to the full per-query dispatch.
Result<bool> IsCertainCompiled(const CompiledQuery& compiled,
                               const Database& db, const Query& ground) {
  if (compiled.complexity.has_value()) {
    switch (*compiled.complexity) {
      case ComplexityClass::kFirstOrder:
        // CompileForParams always pairs kFirstOrder with a cached
        // rewriting, and the caller answers FO rows through it.
        return Status::Internal(
            "FO row reached the non-FO compiled dispatch");
      case ComplexityClass::kPtimeTerminalCycles: {
        Result<bool> r = TerminalCycleSolver::IsCertain(db, ground);
        if (r.ok()) return r;
        break;
      }
      case ComplexityClass::kPtimeAck: {
        Result<bool> r = AckSolver::IsCertain(db, ground);
        if (r.ok()) return r;
        break;
      }
      case ComplexityClass::kPtimeCk: {
        Result<bool> r = CkSolver::IsCertain(db, ground);
        if (r.ok()) return r;
        break;
      }
      case ComplexityClass::kConpComplete:
      case ComplexityClass::kOpenConjecturedPtime:
        return SatSolver::IsCertain(db, ground);
    }
    Result<SolveOutcome> solved = Engine::Solve(db, ground);
    if (!solved.ok()) return solved.status();
    return solved->certain;
  }
  return SatSolver::IsCertain(db, ground);
}

}  // namespace

Result<std::vector<std::vector<SymbolId>>> Engine::CertainAnswers(
    const Database& db, const Query& q,
    const std::vector<SymbolId>& free_vars) {
  Result<std::vector<std::vector<SymbolId>>> possible =
      PossibleAnswers(db, q, free_vars);
  if (!possible.ok()) return possible.status();
  std::vector<std::vector<SymbolId>> out;
  if (possible->empty()) return out;

  Result<CompiledQuery> compiled = CompileForParams(q, free_vars);
  if (!compiled.ok()) return compiled.status();
  // FO path: one evaluator (and its FactIndex) shared by every row.
  std::optional<FormulaEvaluator> evaluator;
  if (compiled->fo.has_value()) evaluator.emplace(db);

  for (const std::vector<SymbolId>& row : *possible) {
    bool certain;
    if (compiled->fo.has_value()) {
      Valuation binding;
      for (size_t i = 0; i < free_vars.size(); ++i) {
        binding.Bind(free_vars[i], row[i]);
      }
      certain = compiled->fo->IsCertain(*evaluator, binding);
    } else {
      Query ground = q;
      for (size_t i = 0; i < free_vars.size(); ++i) {
        ground = ground.Substitute(free_vars[i], row[i]);
      }
      Result<bool> r = IsCertainCompiled(*compiled, db, ground);
      if (!r.ok()) return r.status();
      certain = *r;
    }
    if (certain) out.push_back(row);
  }
  return out;
}

}  // namespace cqa
