// The shim implements the deprecated surface; calling it here is the
// point.
#define CQA_ALLOW_DEPRECATED_ENGINE
#include "solvers/engine.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "cq/matcher.h"
#include "util/thread_pool.h"

namespace cqa {

namespace {

PlanCache& ResolveCache(const BatchOptions& options) {
  return options.cache != nullptr ? *options.cache : PlanCache::Global();
}

/// Candidate bindings of `free_vars` from embeddings of q into the
/// context's (shared, lazily indexed) view of the database.
Result<std::vector<std::vector<SymbolId>>> PossibleAnswersImpl(
    EvalContext& ctx, const Query& q,
    const std::vector<SymbolId>& free_vars) {
  CQA_RETURN_NOT_OK(ValidateFreeVars(q, free_vars));
  return CollectProjectionsSorted(ctx.fact_index(), q, Valuation(),
                                  free_vars);
}

/// The CertainAnswers pipeline against a caller-provided context and
/// cache (shared by the one-shot and the batched entry points). The
/// plan resolves FIRST: malformed requests (a free variable missing
/// from the query) are rejected straight from the cache's negative
/// entries, before any database work.
Result<std::vector<std::vector<SymbolId>>> CertainAnswersImpl(
    EvalContext& ctx, const Query& q,
    const std::vector<SymbolId>& free_vars, PlanCache& cache) {
  Result<std::shared_ptr<const QueryPlan>> plan =
      free_vars.empty() ? cache.GetOrCompile(q)
                        : cache.GetOrCompile(q, free_vars);
  if (!plan.ok()) return plan.status();

  Result<std::vector<std::vector<SymbolId>>> possible =
      PossibleAnswersImpl(ctx, q, free_vars);
  if (!possible.ok()) return possible.status();
  std::vector<std::vector<SymbolId>> out;
  if (possible->empty()) return out;

  if (free_vars.empty()) {
    // Boolean semantics: the single (empty) candidate row is a certain
    // answer iff db ∈ CERTAINTY(q); the plan is a plain Boolean plan.
    Result<SolveOutcome> solved = (*plan)->Solve(ctx);
    if (!solved.ok()) return solved.status();
    if (solved->certain) out.push_back({});
    return out;
  }

  // Set-at-a-time: all candidate rows in one pass (FO plans run the
  // compiled program; the rest decide row by row inside the plan).
  Result<std::vector<char>> certain = (*plan)->IsCertainRows(ctx, *possible);
  if (!certain.ok()) return certain.status();
  for (size_t i = 0; i < possible->size(); ++i) {
    if ((*certain)[i]) out.push_back((*possible)[i]);
  }
  return out;
}

/// The shared batch scaffold: `serve(ctx, i)` is called once per item
/// index over the worker pool (caller-owned via options.pool, or a
/// transient one), each worker with its own EvalContext for
/// index/evaluator reuse.
template <typename ServeFn>
void RunBatch(const Database& db, size_t n, const BatchOptions& options,
              const ServeFn& serve) {
  if (n == 0) return;
  int threads = options.pool != nullptr ? options.pool->size()
                : options.num_threads > 0 ? options.num_threads
                                          : DefaultServingThreads();
  threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(threads, 1)), n));

  std::atomic<size_t> cursor{0};
  auto worker = [&] {
    EvalContext ctx(db);
    for (size_t i = cursor.fetch_add(1); i < n; i = cursor.fetch_add(1)) {
      serve(ctx, i);
    }
  };
  if (options.pool != nullptr) {
    for (int t = 0; t < threads; ++t) options.pool->Submit(worker);
    options.pool->Wait();
    return;
  }
  if (threads <= 1) {
    worker();
    return;
  }
  ThreadPool pool(threads);
  for (int t = 0; t < threads; ++t) pool.Submit(worker);
  pool.Wait();
}

}  // namespace

Result<SolveOutcome> Engine::Solve(const Database& db, const Query& q) {
  Result<std::shared_ptr<const QueryPlan>> plan =
      PlanCache::Global().GetOrCompile(q);
  if (!plan.ok()) return plan.status();
  return (*plan)->Solve(db);
}

Result<std::vector<std::vector<SymbolId>>> Engine::PossibleAnswers(
    const Database& db, const Query& q,
    const std::vector<SymbolId>& free_vars) {
  EvalContext ctx(db);
  return PossibleAnswersImpl(ctx, q, free_vars);
}

Result<std::vector<std::vector<SymbolId>>> Engine::CertainAnswers(
    const Database& db, const Query& q,
    const std::vector<SymbolId>& free_vars) {
  EvalContext ctx(db);
  return CertainAnswersImpl(ctx, q, free_vars, PlanCache::Global());
}

Result<std::optional<std::vector<Fact>>> Engine::FindFalsifyingRepair(
    const Database& db, const Query& q) {
  Result<std::shared_ptr<const QueryPlan>> plan =
      PlanCache::Global().GetOrCompile(q);
  if (!plan.ok()) return plan.status();
  return (*plan)->FindFalsifyingRepair(db);
}

std::vector<Result<SolveOutcome>> Engine::SolveBatch(
    const Database& db, const std::vector<Query>& queries,
    const BatchOptions& options) {
  PlanCache& cache = ResolveCache(options);
  std::vector<Result<SolveOutcome>> results(
      queries.size(),
      Result<SolveOutcome>(Status::Internal("batch item not served")));
  RunBatch(db, queries.size(), options,
           [&](EvalContext& ctx, size_t i) {
             Result<std::shared_ptr<const QueryPlan>> plan =
                 cache.GetOrCompile(queries[i]);
             if (!plan.ok()) {
               results[i] = plan.status();
               return;
             }
             results[i] = (*plan)->Solve(ctx);
           });
  return results;
}

std::vector<Result<std::vector<std::vector<SymbolId>>>>
Engine::CertainAnswersBatch(const Database& db,
                            const std::vector<CertainAnswersRequest>& requests,
                            const BatchOptions& options) {
  using Rows = std::vector<std::vector<SymbolId>>;
  PlanCache& cache = ResolveCache(options);
  std::vector<Result<Rows>> results(
      requests.size(),
      Result<Rows>(Status::Internal("batch item not served")));
  RunBatch(db, requests.size(), options,
           [&](EvalContext& ctx, size_t i) {
             results[i] = CertainAnswersImpl(ctx, requests[i].query,
                                             requests[i].free_vars, cache);
           });
  return results;
}

}  // namespace cqa
