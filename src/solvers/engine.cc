#include "solvers/engine.h"

#include <algorithm>
#include <set>

#include "cq/matcher.h"
#include "solvers/ack_solver.h"
#include "solvers/ck_solver.h"
#include "solvers/fo_solver.h"
#include "solvers/sat_solver.h"
#include "solvers/terminal_cycle_solver.h"

namespace cqa {

Result<SolveOutcome> Engine::Solve(const Database& db, const Query& q) {
  Result<Classification> cls = ClassifyQuery(q);
  if (!cls.ok()) {
    // Unsupported fragment (self-join, non-C(k) cyclic query): fall back
    // to the sound-and-complete SAT search, but report the failure cause
    // for genuinely malformed queries.
    if (cls.status().code() != StatusCode::kUnsupported) {
      return cls.status();
    }
    SolveOutcome out;
    out.certain = SatSolver::IsCertain(db, q);
    out.complexity = ComplexityClass::kOpenConjecturedPtime;
    out.solver = "sat";
    return out;
  }

  SolveOutcome out;
  out.complexity = cls->complexity;
  switch (cls->complexity) {
    case ComplexityClass::kFirstOrder: {
      Result<FoSolver> fo = FoSolver::Create(q);
      if (!fo.ok()) return fo.status();
      out.certain = fo->IsCertain(db);
      out.solver = "fo-rewriting";
      return out;
    }
    case ComplexityClass::kPtimeTerminalCycles: {
      Result<bool> r = TerminalCycleSolver::IsCertain(db, q);
      if (!r.ok()) return r.status();
      out.certain = *r;
      out.solver = "terminal-cycles";
      return out;
    }
    case ComplexityClass::kPtimeAck: {
      Result<bool> r = AckSolver::IsCertain(db, q);
      if (!r.ok()) return r.status();
      out.certain = *r;
      out.solver = "ack";
      return out;
    }
    case ComplexityClass::kPtimeCk: {
      Result<bool> r = CkSolver::IsCertain(db, q);
      if (!r.ok()) return r.status();
      out.certain = *r;
      out.solver = "ck";
      return out;
    }
    case ComplexityClass::kConpComplete:
    case ComplexityClass::kOpenConjecturedPtime: {
      out.certain = SatSolver::IsCertain(db, q);
      out.solver = "sat";
      return out;
    }
  }
  return Status::Internal("unreachable");
}

std::vector<std::vector<SymbolId>> Engine::PossibleAnswers(
    const Database& db, const Query& q,
    const std::vector<SymbolId>& free_vars) {
  std::set<std::vector<SymbolId>> answers;
  FactIndex index(db);
  ForEachEmbedding(index, q, Valuation(), [&](const Valuation& theta) {
    std::vector<SymbolId> row;
    row.reserve(free_vars.size());
    for (SymbolId v : free_vars) {
      auto value = theta.Get(v);
      row.push_back(value.has_value() ? *value : 0);
    }
    answers.insert(std::move(row));
    return true;
  });
  return std::vector<std::vector<SymbolId>>(answers.begin(), answers.end());
}

Result<std::optional<std::vector<Fact>>> Engine::FindFalsifyingRepair(
    const Database& db, const Query& q) {
  if (MatchAckPattern(q).has_value()) {
    return AckSolver::FindFalsifyingRepair(db, q);
  }
  return std::optional<std::vector<Fact>>(
      SatSolver::FindFalsifyingRepair(db, q));
}

Result<std::vector<std::vector<SymbolId>>> Engine::CertainAnswers(
    const Database& db, const Query& q,
    const std::vector<SymbolId>& free_vars) {
  std::vector<std::vector<SymbolId>> out;
  for (const std::vector<SymbolId>& row : PossibleAnswers(db, q, free_vars)) {
    Query ground = q;
    for (size_t i = 0; i < free_vars.size(); ++i) {
      ground = ground.Substitute(free_vars[i], row[i]);
    }
    Result<SolveOutcome> solved = Solve(db, ground);
    if (!solved.ok()) return solved.status();
    if (solved->certain) out.push_back(row);
  }
  return out;
}

}  // namespace cqa
