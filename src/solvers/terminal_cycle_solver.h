#ifndef CQA_SOLVERS_TERMINAL_CYCLE_SOLVER_H_
#define CQA_SOLVERS_TERMINAL_CYCLE_SOLVER_H_

#include "cq/query.h"
#include "db/database.h"
#include "solvers/solver.h"
#include "util/status.h"

/// \file
/// The Theorem 3 algorithm: CERTAINTY(q) in polynomial time when every
/// cycle of q's attack graph is weak and terminal. Follows the paper's
/// inductive proof literally:
///
///  * Induction step — an unattacked atom F exists. By Corollary 8.11 of
///    Wijsen TODS'12, db ∈ CERTAINTY(q) iff for some grounding a⃗ of
///    key(F) over the active domain, db ∈ CERTAINTY(q[x⃗↦a⃗]); F (whose
///    key is now ground) is then eliminated with Lemma 8: every fact
///    matching F's pattern must leave a certain residue query. Lemma 5
///    guarantees the reduced queries stay in the weak-terminal class.
///
///  * Base case — no unattacked atom: the attack graph is a disjoint
///    union of weak 2-cycles {F_i, G_i} covering all atoms (Lemma 6).
///    db_i (the facts of F_i/G_i's relations) is split into partitions
///    by the values of the variables shared with other cycles (which sit
///    inside both keys, Lemma 7); ⟦db_i⟧ collects the partitions that are
///    certain for the two-atom query q_i = {F_i, G_i} (decided by
///    TwoAtomSolver), and db is certain iff ⋃⟦db_i⟧ ⊨ q (Sublemma 5).

namespace cqa {

class TerminalCycleSolver final : public Solver {
 public:
  /// The Theorem 3 precondition (self-join-free, all attack cycles weak
  /// and terminal) is checked here, once — Decide only replays the
  /// stored verdict, so a compiled plan pays no per-call attack-graph
  /// recomputation.
  explicit TerminalCycleSolver(Query q);

  SolverKind kind() const override { return SolverKind::kTerminalCycles; }

  /// Decides db ∈ CERTAINTY(q). Fails unless all cycles of q's attack
  /// graph are weak and terminal (callers should classify first).
  Result<SolverCall> Decide(EvalContext& ctx) const override;

 private:
  Status validation_;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_TERMINAL_CYCLE_SOLVER_H_
