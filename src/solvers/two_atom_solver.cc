#include "solvers/two_atom_solver.h"

#include <algorithm>
#include <vector>

#include "core/attack_graph.h"
#include "cq/matcher.h"
#include "db/purify.h"
#include "solvers/blossom.h"
#include "solvers/fo_solver.h"
#include "solvers/mis.h"
#include "solvers/sat_solver.h"

namespace cqa {

namespace {

/// Conflict pairs: fact-id pairs {θ(F), θ(G)} over all embeddings θ.
std::vector<std::pair<int, int>> ConflictPairs(const Database& db,
                                               const Query& q) {
  std::vector<std::pair<int, int>> pairs;
  FactIndex index(db);
  ForEachEmbeddingFacts(
      index, q, Valuation(),
      [&](const Valuation&, const std::vector<const Fact*>& facts) {
        pairs.emplace_back(db.FactIdOf(facts[0]), db.FactIdOf(facts[1]));
        return true;
      });
  // Dedup (repeated variables can produce the same pair twice).
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

/// Blocks as fact-id -> block-id, plus the number of blocks.
std::pair<std::vector<int>, int> BlockIds(const Database& db) {
  std::vector<int> block_of(db.size(), -1);
  int num = static_cast<int>(db.blocks().size());
  for (int b = 0; b < num; ++b) {
    for (int fid : db.blocks()[b].fact_ids) block_of[fid] = b;
  }
  return {block_of, num};
}

/// Polynomial path: conflicts form a partial matching. Builds the
/// bipartite multigraph H (blocks + conflict pairs; facts are edges) and
/// checks ν(H) == #blocks.
bool MatchingPathNotCertain(const Database& db,
                            const std::vector<std::pair<int, int>>& pairs) {
  auto [block_of, num_blocks] = BlockIds(db);
  int num_pairs = static_cast<int>(pairs.size());
  // Vertices: [0, num_blocks) blocks, then conflict-pair vertices, then
  // one auxiliary vertex per partnerless fact.
  std::vector<int> partner_pair(db.size(), -1);
  for (int p = 0; p < num_pairs; ++p) {
    partner_pair[pairs[p].first] = p;
    partner_pair[pairs[p].second] = p;
  }
  int aux = 0;
  for (int f = 0; f < db.size(); ++f) {
    if (partner_pair[f] == -1) ++aux;
  }
  BlossomMatching matching(num_blocks + num_pairs + aux);
  int next_aux = num_blocks + num_pairs;
  for (int f = 0; f < db.size(); ++f) {
    int other = partner_pair[f] == -1 ? next_aux++
                                      : num_blocks + partner_pair[f];
    matching.AddEdge(block_of[f], other);
  }
  int matched = matching.Solve();
  // A matching of size #blocks is a transversal avoiding all conflicts.
  return matched >= num_blocks;
}

/// General path: exact MIS on the conflict graph (block cliques +
/// conflict edges); a falsifying repair exists iff α == #blocks.
bool MisPathNotCertain(const Database& db,
                       const std::vector<std::pair<int, int>>& pairs) {
  int num_blocks = static_cast<int>(db.blocks().size());
  MaxIndependentSet mis(db.size());
  for (const Database::Block& block : db.blocks()) {
    for (size_t a = 0; a < block.fact_ids.size(); ++a) {
      for (size_t b = a + 1; b < block.fact_ids.size(); ++b) {
        mis.AddEdge(block.fact_ids[a], block.fact_ids[b]);
      }
    }
  }
  for (auto [a, b] : pairs) mis.AddEdge(a, b);
  return mis.Solve() >= num_blocks;
}

}  // namespace

Result<bool> TwoAtomSolver::IsCertain(const Database& db) {
  const Query& q = query_;
  if (q.size() != 2) {
    return Status::InvalidArgument("TwoAtomSolver needs exactly two atoms");
  }
  if (q.HasSelfJoin()) {
    return Status::Unsupported("TwoAtomSolver assumes no self-join");
  }
  Result<AttackGraph> graph = AttackGraph::Compute(q);
  if (!graph.ok()) return graph.status();

  if (graph->IsAcyclic()) {
    path_ = Path::kFoRewriting;
    Result<FoSolver> fo = FoSolver::Create(q);
    if (!fo.ok()) return fo.status();
    return fo->IsCertain(db);
  }
  bool weak_cycle = graph->IsWeakAttack(0, 1) && graph->IsWeakAttack(1, 0);
  if (!weak_cycle) {
    // Strong cycle: coNP-complete (Theorem 2); decide by SAT search.
    path_ = Path::kSat;
    return SatSolver(q).IsCertain(db);
  }

  Database purified = Purify(db, q);
  if (purified.empty()) {
    // The empty repair falsifies the (nonempty) query.
    path_ = Path::kMatching;
    return false;
  }
  std::vector<std::pair<int, int>> pairs = ConflictPairs(purified, q);
  // Matching regime: every fact participates in at most one conflict.
  std::vector<int> degree(purified.size(), 0);
  bool is_matching = true;
  for (auto [a, b] : pairs) {
    if (++degree[a] > 1 || ++degree[b] > 1) {
      is_matching = false;
      break;
    }
  }
  bool not_certain;
  if (is_matching) {
    path_ = Path::kMatching;
    not_certain = MatchingPathNotCertain(purified, pairs);
  } else {
    path_ = Path::kMis;
    not_certain = MisPathNotCertain(purified, pairs);
  }
  return !not_certain;
}

}  // namespace cqa
