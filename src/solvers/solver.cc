#include "solvers/solver.h"

#include <utility>

#include "solvers/ack_solver.h"
#include "solvers/ck_solver.h"
#include "solvers/fo_solver.h"
#include "solvers/oracle_solver.h"
#include "solvers/sat_solver.h"
#include "solvers/terminal_cycle_solver.h"

namespace cqa {

const char* ToString(SolverKind kind) {
  switch (kind) {
    case SolverKind::kFoRewriting:
      return "fo-rewriting";
    case SolverKind::kTerminalCycles:
      return "terminal-cycles";
    case SolverKind::kAck:
      return "ack";
    case SolverKind::kCk:
      return "ck";
    case SolverKind::kSat:
      return "sat";
    case SolverKind::kOracle:
      return "oracle";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, SolverKind kind) {
  return os << ToString(kind);
}

std::optional<SolverKind> SolverKindFromString(std::string_view name) {
  for (SolverKind kind :
       {SolverKind::kFoRewriting, SolverKind::kTerminalCycles,
        SolverKind::kAck, SolverKind::kCk, SolverKind::kSat,
        SolverKind::kOracle}) {
    if (name == ToString(kind)) return kind;
  }
  return std::nullopt;
}

SolverStats& SolverStats::operator=(const SolverStats& o) {
  calls.store(o.calls.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  certain.store(o.certain.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  sat_vars.store(o.sat_vars.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  sat_clauses.store(o.sat_clauses.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  sat_decisions.store(o.sat_decisions.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return *this;
}

SolverStats::Snapshot SolverStats::snapshot() const {
  Snapshot s;
  s.calls = calls.load(std::memory_order_relaxed);
  s.certain = certain.load(std::memory_order_relaxed);
  s.sat_vars = sat_vars.load(std::memory_order_relaxed);
  s.sat_clauses = sat_clauses.load(std::memory_order_relaxed);
  s.sat_decisions = sat_decisions.load(std::memory_order_relaxed);
  return s;
}

void SolverStats::Record(const SolverCall& call) {
  calls.fetch_add(1, std::memory_order_relaxed);
  if (call.certain) certain.fetch_add(1, std::memory_order_relaxed);
  // Skip the zero adds off the SAT path: a shared plan's stats line is
  // contended, and most solves never touch the SAT fields.
  if (call.sat_vars != 0) {
    sat_vars.fetch_add(call.sat_vars, std::memory_order_relaxed);
  }
  if (call.sat_clauses != 0) {
    sat_clauses.fetch_add(call.sat_clauses, std::memory_order_relaxed);
  }
  if (call.sat_decisions != 0) {
    sat_decisions.fetch_add(call.sat_decisions, std::memory_order_relaxed);
  }
}

FactIndex& EvalContext::fact_index() {
  if (!index_.has_value()) index_.emplace(db_);
  return *index_;
}

const FormulaEvaluator& EvalContext::evaluator() {
  // Borrow the context's fact index (building it if needed): the
  // evaluator's guarded quantifiers and atom checks then profit from
  // buckets warmed by the matcher, and a serving session has only one
  // structure to patch per delta.
  if (!evaluator_.has_value()) {
    evaluator_.emplace(&fact_index(), db_.ActiveDomain());
  }
  return *evaluator_;
}

Result<std::optional<std::vector<Fact>>> Solver::FindFalsifyingRepair(
    EvalContext& ctx) const {
  // Sound and complete for every query; solvers with a native witness
  // extraction override this.
  SolverCall call;
  std::optional<std::vector<Fact>> repair =
      SatSolver::SearchFalsifyingRepair(ctx, query_, &call);
  call.certain = !repair.has_value();
  stats_.Record(call);
  return repair;
}

Result<bool> Solver::IsCertain(const Database& db) const {
  EvalContext ctx(db);
  return IsCertain(ctx);
}

Result<bool> Solver::IsCertain(EvalContext& ctx) const {
  Result<SolverCall> call = Decide(ctx);
  if (!call.ok()) return call.status();
  stats_.Record(*call);
  return call->certain;
}

Result<std::optional<std::vector<Fact>>> Solver::FindFalsifyingRepair(
    const Database& db) const {
  EvalContext ctx(db);
  return FindFalsifyingRepair(ctx);
}

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = new SolverRegistry();
  return *registry;
}

SolverRegistry::SolverRegistry() {
  Register(SolverKind::kFoRewriting,
           [](const Query& q, const VarSet& params)
               -> Result<std::unique_ptr<Solver>> {
             Result<FoSolver> fo = FoSolver::Create(q, params);
             if (!fo.ok()) return fo.status();
             return std::unique_ptr<Solver>(
                 new FoSolver(std::move(fo).value()));
           });
  Register(SolverKind::kTerminalCycles,
           [](const Query& q, const VarSet&)
               -> Result<std::unique_ptr<Solver>> {
             return std::unique_ptr<Solver>(new TerminalCycleSolver(q));
           });
  Register(SolverKind::kAck,
           [](const Query& q, const VarSet&)
               -> Result<std::unique_ptr<Solver>> {
             return std::unique_ptr<Solver>(new AckSolver(q));
           });
  Register(SolverKind::kCk,
           [](const Query& q, const VarSet&)
               -> Result<std::unique_ptr<Solver>> {
             return std::unique_ptr<Solver>(new CkSolver(q));
           });
  Register(SolverKind::kSat,
           [](const Query& q, const VarSet&)
               -> Result<std::unique_ptr<Solver>> {
             return std::unique_ptr<Solver>(new SatSolver(q));
           });
  Register(SolverKind::kOracle,
           [](const Query& q, const VarSet&)
               -> Result<std::unique_ptr<Solver>> {
             return std::unique_ptr<Solver>(new OracleSolver(q));
           });
}

void SolverRegistry::Register(SolverKind kind, SolverFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[kind] = std::move(factory);
}

Result<std::unique_ptr<Solver>> SolverRegistry::Create(
    SolverKind kind, const Query& q, const VarSet& params) const {
  SolverFactory factory = Factory(kind);
  if (!factory) {
    return Status::NotFound(std::string("no solver registered for '") +
                            ToString(kind) + "'");
  }
  return factory(q, params);
}

SolverFactory SolverRegistry::Factory(SolverKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = factories_.find(kind);
  return it == factories_.end() ? SolverFactory() : it->second;
}

std::vector<SolverKind> SolverRegistry::kinds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SolverKind> out;
  out.reserve(factories_.size());
  for (const auto& [kind, _] : factories_) out.push_back(kind);
  return out;
}

}  // namespace cqa
