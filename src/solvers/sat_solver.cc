#include "solvers/sat_solver.h"

#include "cq/matcher.h"
#include "solvers/sat/cnf.h"
#include "solvers/sat/dpll.h"

namespace cqa {

namespace {

struct Encoding {
  Cnf cnf;
  // fact id (index into db.facts()) -> SAT variable.
  std::vector<int> fact_var;
};

Encoding Encode(EvalContext& ctx, const Query& q) {
  const Database& db = ctx.db();
  Encoding enc;
  enc.fact_var.assign(db.facts().size(), 0);
  for (size_t i = 0; i < db.facts().size(); ++i) {
    enc.fact_var[i] = enc.cnf.AddVar();
  }
  // Exactly one fact per block.
  for (const Database::Block& block : db.blocks()) {
    std::vector<int> at_least_one;
    at_least_one.reserve(block.fact_ids.size());
    for (int fid : block.fact_ids) {
      at_least_one.push_back(enc.fact_var[fid]);
    }
    enc.cnf.AddClause(at_least_one);
    for (size_t a = 0; a < block.fact_ids.size(); ++a) {
      for (size_t b = a + 1; b < block.fact_ids.size(); ++b) {
        enc.cnf.AddClause({-enc.fact_var[block.fact_ids[a]],
                           -enc.fact_var[block.fact_ids[b]]});
      }
    }
  }
  // Forbid every embedding of q. The matcher hands back the matched
  // facts; their ids come from the database's address->id map, no value
  // hashing needed. The index comes from the context, so a batch worker
  // reuses one set of lazily built buckets across every query it serves.
  ForEachEmbeddingFacts(
      ctx.fact_index(), q, Valuation(),
      [&](const Valuation&, const std::vector<const Fact*>& facts) {
        std::vector<int> clause;
        clause.reserve(q.size());
        for (const Fact* fact : facts) {
          int fid = db.FactIdOf(fact);
          int lit = -enc.fact_var[fid];
          // Dedup repeated literals (two atoms hitting the same fact).
          bool dup = false;
          for (int existing : clause) dup = dup || existing == lit;
          if (!dup) clause.push_back(lit);
        }
        enc.cnf.AddClause(std::move(clause));
        return true;
      });
  return enc;
}

}  // namespace

std::optional<std::vector<Fact>> SatSolver::SearchFalsifyingRepair(
    EvalContext& ctx, const Query& q, SolverCall* call) {
  // An empty database has the single repair {}; it satisfies q only if q
  // is satisfied by the empty fact set (q must be empty).
  const Database& db = ctx.db();
  Encoding enc = Encode(ctx, q);
  DpllSolver solver(enc.cnf);
  SatResult result = solver.Solve();
  call->sat_vars = enc.cnf.num_vars();
  call->sat_clauses = static_cast<int64_t>(enc.cnf.clauses().size());
  call->sat_decisions = solver.decisions();
  if (result == SatResult::kUnsat) return std::nullopt;
  std::vector<Fact> repair;
  for (size_t i = 0; i < db.facts().size(); ++i) {
    if (solver.model()[enc.fact_var[i] - 1]) {
      repair.push_back(db.facts()[i]);
    }
  }
  return repair;
}

Result<SolverCall> SatSolver::Decide(EvalContext& ctx) const {
  SolverCall call;
  call.certain = !SearchFalsifyingRepair(ctx, query_, &call).has_value();
  return call;
}

Result<std::optional<std::vector<Fact>>> SatSolver::FindFalsifyingRepair(
    EvalContext& ctx) const {
  SolverCall call;
  std::optional<std::vector<Fact>> repair =
      SearchFalsifyingRepair(ctx, query_, &call);
  call.certain = !repair.has_value();
  stats_.Record(call);
  return repair;
}

}  // namespace cqa
