#include "solvers/sat_solver.h"

#include "cq/matcher.h"
#include "solvers/sat/cnf.h"
#include "solvers/sat/dpll.h"

namespace cqa {

SatSolver::Stats SatSolver::stats_;

namespace {

struct Encoding {
  Cnf cnf;
  // fact id (index into db.facts()) -> SAT variable.
  std::vector<int> fact_var;
};

Encoding Encode(const Database& db, const Query& q) {
  Encoding enc;
  enc.fact_var.assign(db.facts().size(), 0);
  for (size_t i = 0; i < db.facts().size(); ++i) {
    enc.fact_var[i] = enc.cnf.AddVar();
  }
  // Exactly one fact per block.
  for (const Database::Block& block : db.blocks()) {
    std::vector<int> at_least_one;
    at_least_one.reserve(block.fact_ids.size());
    for (int fid : block.fact_ids) {
      at_least_one.push_back(enc.fact_var[fid]);
    }
    enc.cnf.AddClause(at_least_one);
    for (size_t a = 0; a < block.fact_ids.size(); ++a) {
      for (size_t b = a + 1; b < block.fact_ids.size(); ++b) {
        enc.cnf.AddClause({-enc.fact_var[block.fact_ids[a]],
                           -enc.fact_var[block.fact_ids[b]]});
      }
    }
  }
  // Forbid every embedding of q. The matcher hands back the matched
  // facts; their ids are offsets into db.facts(), no hashing needed.
  const Fact* base = db.facts().data();
  FactIndex index(db);
  ForEachEmbeddingFacts(
      index, q, Valuation(),
      [&](const Valuation&, const std::vector<const Fact*>& facts) {
        std::vector<int> clause;
        clause.reserve(q.size());
        for (const Fact* fact : facts) {
          int fid = static_cast<int>(fact - base);
          int lit = -enc.fact_var[fid];
          // Dedup repeated literals (two atoms hitting the same fact).
          bool dup = false;
          for (int existing : clause) dup = dup || existing == lit;
          if (!dup) clause.push_back(lit);
        }
        enc.cnf.AddClause(std::move(clause));
        return true;
      });
  return enc;
}

}  // namespace

bool SatSolver::IsCertain(const Database& db, const Query& q) {
  return !FindFalsifyingRepair(db, q).has_value();
}

std::optional<std::vector<Fact>> SatSolver::FindFalsifyingRepair(
    const Database& db, const Query& q) {
  // An empty database has the single repair {}; it satisfies q only if q
  // is satisfied by the empty fact set (q must be empty).
  Encoding enc = Encode(db, q);
  DpllSolver solver(enc.cnf);
  SatResult result = solver.Solve();
  stats_.vars = enc.cnf.num_vars();
  stats_.clauses = static_cast<int>(enc.cnf.clauses().size());
  stats_.decisions = solver.decisions();
  if (result == SatResult::kUnsat) return std::nullopt;
  std::vector<Fact> repair;
  for (size_t i = 0; i < db.facts().size(); ++i) {
    if (solver.model()[enc.fact_var[i] - 1]) {
      repair.push_back(db.facts()[i]);
    }
  }
  return repair;
}

}  // namespace cqa
