#include "solvers/blossom.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace cqa {

void BlossomMatching::AddEdge(int u, int v) {
  assert(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v);
  adj_[u].push_back(v);
  adj_[v].push_back(u);
}

int BlossomMatching::LowestCommonAncestor(int a, int b) {
  std::vector<bool> visited(n_, false);
  // Walk up from a, marking bases.
  for (;;) {
    a = base_[a];
    visited[a] = true;
    if (mate_[a] == -1) break;
    a = parent_[mate_[a]];
  }
  // Walk up from b until a marked base.
  for (;;) {
    b = base_[b];
    if (visited[b]) return b;
    b = parent_[mate_[b]];
  }
}

void BlossomMatching::MarkPath(int v, int base, int child) {
  while (base_[v] != base) {
    blossom_[base_[v]] = true;
    blossom_[base_[mate_[v]]] = true;
    parent_[v] = child;
    child = mate_[v];
    v = parent_[mate_[v]];
  }
}

int BlossomMatching::FindAugmentingPath(int root) {
  used_.assign(n_, false);
  parent_.assign(n_, -1);
  for (int v = 0; v < n_; ++v) base_[v] = v;
  used_[root] = true;
  std::deque<int> queue{root};
  while (!queue.empty()) {
    int v = queue.front();
    queue.pop_front();
    for (int to : adj_[v]) {
      if (base_[v] == base_[to] || mate_[v] == to) continue;
      if (to == root || (mate_[to] != -1 && parent_[mate_[to]] != -1)) {
        // Found a blossom; contract it.
        int cur_base = LowestCommonAncestor(v, to);
        blossom_.assign(n_, false);
        MarkPath(v, cur_base, to);
        MarkPath(to, cur_base, v);
        for (int u = 0; u < n_; ++u) {
          if (blossom_[base_[u]]) {
            base_[u] = cur_base;
            if (!used_[u]) {
              used_[u] = true;
              queue.push_back(u);
            }
          }
        }
      } else if (parent_[to] == -1) {
        parent_[to] = v;
        if (mate_[to] == -1) {
          return to;  // Augmenting path found.
        }
        used_[mate_[to]] = true;
        queue.push_back(mate_[to]);
      }
    }
  }
  return -1;
}

int BlossomMatching::Solve() {
  mate_.assign(n_, -1);
  parent_.assign(n_, -1);
  base_.assign(n_, 0);
  used_.assign(n_, false);
  blossom_.assign(n_, false);

  // Greedy initialization speeds up the augmenting phase.
  for (int v = 0; v < n_; ++v) {
    if (mate_[v] != -1) continue;
    for (int to : adj_[v]) {
      if (mate_[to] == -1) {
        mate_[v] = to;
        mate_[to] = v;
        break;
      }
    }
  }

  int matches = 0;
  for (int v = 0; v < n_; ++v) {
    if (mate_[v] != -1) ++matches;
  }
  matches /= 2;

  for (int v = 0; v < n_; ++v) {
    if (mate_[v] != -1) continue;
    int u = FindAugmentingPath(v);
    if (u == -1) continue;
    ++matches;
    // Flip matched/unmatched along the path ending at u.
    while (u != -1) {
      int pv = parent_[u];
      int ppv = mate_[pv];
      mate_[u] = pv;
      mate_[pv] = u;
      u = ppv;
    }
  }
  return matches;
}

}  // namespace cqa
