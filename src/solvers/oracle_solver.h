#ifndef CQA_SOLVERS_ORACLE_SOLVER_H_
#define CQA_SOLVERS_ORACLE_SOLVER_H_

#include <optional>

#include "cq/query.h"
#include "db/database.h"
#include "db/repairs.h"
#include "util/bigint.h"

/// \file
/// Ground-truth solver: decides db ∈ CERTAINTY(q) by enumerating every
/// repair. Exponential in the number of non-singleton blocks; used to
/// validate every polynomial algorithm in the library and as the baseline
/// in the benchmarks (it is the "obvious" upper bound the paper's
/// tractability results beat).

namespace cqa {

class OracleSolver {
 public:
  /// True iff every repair of `db` satisfies `q`.
  static bool IsCertain(const Database& db, const Query& q);

  /// A repair falsifying q, if one exists (i.e. iff not certain).
  static std::optional<std::vector<Fact>> FindFalsifyingRepair(
      const Database& db, const Query& q);

  /// Number of repairs satisfying q (the #CERTAINTY oracle).
  static BigInt CountSatisfyingRepairs(const Database& db, const Query& q);
};

}  // namespace cqa

#endif  // CQA_SOLVERS_ORACLE_SOLVER_H_
