#ifndef CQA_SOLVERS_ORACLE_SOLVER_H_
#define CQA_SOLVERS_ORACLE_SOLVER_H_

#include <optional>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "db/repairs.h"
#include "solvers/solver.h"
#include "util/bigint.h"

/// \file
/// Ground-truth solver: decides db ∈ CERTAINTY(q) by enumerating every
/// repair. Exponential in the number of non-singleton blocks; used to
/// validate every polynomial algorithm in the library and as the baseline
/// in the benchmarks (it is the "obvious" upper bound the paper's
/// tractability results beat).

namespace cqa {

class OracleSolver final : public Solver {
 public:
  explicit OracleSolver(Query q) : Solver(std::move(q)) {}

  SolverKind kind() const override { return SolverKind::kOracle; }

  /// True iff every repair of db satisfies q, by enumeration.
  Result<SolverCall> Decide(EvalContext& ctx) const override;

  /// A repair falsifying q, if one exists (i.e. iff not certain).
  using Solver::FindFalsifyingRepair;
  Result<std::optional<std::vector<Fact>>> FindFalsifyingRepair(
      EvalContext& ctx) const override;

  /// Number of repairs satisfying q (the #CERTAINTY oracle).
  BigInt CountSatisfyingRepairs(const Database& db) const;
};

}  // namespace cqa

#endif  // CQA_SOLVERS_ORACLE_SOLVER_H_
