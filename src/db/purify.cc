#include "db/purify.h"

#include <cassert>
#include <unordered_set>

#include "cq/matcher.h"

namespace cqa {

namespace {

/// True iff there is a valuation θ with fact ∈ θ(q) ⊆ db (db given as
/// index). The fact must be matched by at least one atom, and the match
/// must extend to a full embedding.
bool FactIsRelevant(const FactIndex& index, const Query& q,
                    const Fact& fact) {
  for (int i = 0; i < q.size(); ++i) {
    const Atom& atom = q.atom(i);
    if (atom.relation() != fact.relation() ||
        atom.arity() != fact.arity()) {
      continue;
    }
    // Seed a valuation with atom := fact, then try to embed the rest.
    Valuation seed;
    bool ok = true;
    for (int p = 0; p < atom.arity() && ok; ++p) {
      const Term& t = atom.terms()[p];
      if (t.is_const()) {
        ok = t.id() == fact.values()[p];
      } else {
        ok = seed.Bind(t.id(), fact.values()[p]);
      }
    }
    if (!ok) continue;
    if (SatisfiesWith(index, q.WithoutAtom(i), seed)) return true;
  }
  return false;
}

}  // namespace

Database Purify(const Database& db, const Query& q) {
  return Purify(db, q, nullptr);
}

Database Purify(const Database& db, const Query& q,
                std::vector<Fact>* removed_witnesses) {
  // Iterate to a fixpoint: removing a block can make other facts
  // irrelevant. Each round removes at least one block, so the number of
  // rounds is at most the number of blocks (polynomial, as Lemma 1 needs).
  Database current = db;
  for (;;) {
    FactIndex index(current);
    // Identify all blocks containing an irrelevant fact. Irrelevance is
    // monotone under removal, so batching whole rounds is equivalent to
    // the paper's one-block-at-a-time sequence.
    std::unordered_set<int> doomed_blocks;
    for (int b = 0; b < static_cast<int>(current.blocks().size()); ++b) {
      const Database::Block& block = current.blocks()[b];
      for (int fid : block.fact_ids) {
        if (!FactIsRelevant(index, q, current.facts()[fid])) {
          doomed_blocks.insert(b);
          if (removed_witnesses != nullptr) {
            removed_witnesses->push_back(current.facts()[fid]);
          }
          break;
        }
      }
    }
    if (doomed_blocks.empty()) return current;
    Database next(current.schema());
    for (int b = 0; b < static_cast<int>(current.blocks().size()); ++b) {
      if (doomed_blocks.count(b)) continue;
      for (int fid : current.blocks()[b].fact_ids) {
        Status st = next.AddFact(current.facts()[fid]);
        assert(st.ok());
        (void)st;
      }
    }
    current = std::move(next);
  }
}

bool IsPurified(const Database& db, const Query& q) {
  FactIndex index(db);
  for (const Fact& f : db.facts()) {
    if (!FactIsRelevant(index, q, f)) return false;
  }
  return true;
}

}  // namespace cqa
