#include "db/purify.h"

#include <cassert>
#include <vector>

#include "cq/matcher.h"

namespace cqa {

namespace {

/// True iff there is a valuation θ with fact ∈ θ(q) ⊆ db (db given as
/// index). The fact must be matched by at least one atom, and the match
/// must extend to a full embedding. `rests[i]` is the precomputed
/// q.WithoutAtom(i).
bool FactIsRelevant(const FactIndex& index, const Query& q,
                    const std::vector<Query>& rests, const Fact& fact) {
  for (int i = 0; i < q.size(); ++i) {
    const Atom& atom = q.atom(i);
    if (atom.relation() != fact.relation() ||
        atom.arity() != fact.arity()) {
      continue;
    }
    // Seed a valuation with atom := fact, then try to embed the rest.
    Valuation seed;
    bool ok = true;
    for (int p = 0; p < atom.arity() && ok; ++p) {
      const Term& t = atom.terms()[p];
      if (t.is_const()) {
        ok = t.id() == fact.values()[p];
      } else {
        ok = seed.Bind(t.id(), fact.values()[p]);
      }
    }
    if (!ok) continue;
    if (SatisfiesWith(index, rests[i], seed)) return true;
  }
  return false;
}

std::vector<Query> RestQueries(const Query& q) {
  std::vector<Query> rests;
  rests.reserve(q.size());
  for (int i = 0; i < q.size(); ++i) rests.push_back(q.WithoutAtom(i));
  return rests;
}

}  // namespace

Database Purify(const Database& db, const Query& q) {
  return Purify(db, q, nullptr);
}

Database Purify(const Database& db, const Query& q,
                std::vector<Fact>* removed_witnesses) {
  // Iterate to a fixpoint: removing a block can make other facts
  // irrelevant. Irrelevance is monotone under removal, so dropping a
  // doomed block from the shared index immediately (instead of
  // rebuilding the database per round, as before) reaches the same
  // fixpoint as the paper's one-block-at-a-time sequence — each pass
  // only sees fewer facts, never more.
  std::vector<Query> rests = RestQueries(q);
  FactIndex index(db);
  std::vector<bool> doomed(db.blocks().size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < static_cast<int>(db.blocks().size()); ++b) {
      if (doomed[b]) continue;
      const Database::Block& block = db.blocks()[b];
      for (int fid : block.fact_ids) {
        if (FactIsRelevant(index, q, rests, db.facts()[fid])) continue;
        doomed[b] = true;
        changed = true;
        if (removed_witnesses != nullptr) {
          removed_witnesses->push_back(db.facts()[fid]);
        }
        for (int gone : block.fact_ids) index.Remove(&db.facts()[gone]);
        break;
      }
    }
  }
  Database out(db.schema());
  for (int b = 0; b < static_cast<int>(db.blocks().size()); ++b) {
    if (doomed[b]) continue;
    for (int fid : db.blocks()[b].fact_ids) {
      Status st = out.AddFact(db.facts()[fid]);
      assert(st.ok());
      (void)st;
    }
  }
  return out;
}

bool IsPurified(const Database& db, const Query& q) {
  std::vector<Query> rests = RestQueries(q);
  FactIndex index(db);
  for (const Fact& f : db.facts()) {
    if (!FactIsRelevant(index, q, rests, f)) return false;
  }
  return true;
}

}  // namespace cqa
