#ifndef CQA_DB_REPAIRS_H_
#define CQA_DB_REPAIRS_H_

#include <functional>
#include <vector>

#include "db/database.h"

namespace cqa {
class FactIndex;
}

/// \file
/// Enumeration of repairs. A repair is a maximal consistent subset of an
/// uncertain database, i.e. one fact per block. The number of repairs is
/// the product of block sizes, so enumeration is exponential — it is the
/// ground-truth oracle, not a production code path.

namespace cqa {

/// A repair represented as one fact pointer per block (pointers into the
/// owning database's fact storage).
using Repair = std::vector<const Fact*>;

class RepairEnumerator {
 public:
  explicit RepairEnumerator(const Database& db) : db_(db) {}

  /// Invokes `fn` on every repair. `fn` returns false to stop early.
  /// Returns true when all repairs were visited.
  ///
  /// The empty database has exactly one repair: the empty set.
  bool ForEach(const std::function<bool(const Repair&)>& fn) const;

  /// Like ForEach, but also maintains ONE FactIndex over the current
  /// repair, mutated via FactIndex::SwapFact on every block-choice
  /// change (the odometer flips one block most of the time), instead of
  /// letting callers rebuild an index per repair. This keeps the lazy
  /// position / key-prefix indexes warm across the whole enumeration.
  bool ForEachIndexed(
      const std::function<bool(const FactIndex&, const Repair&)>& fn) const;

  /// Number of repairs (product of block sizes).
  BigInt Count() const { return db_.RepairCount(); }

 private:
  const Database& db_;
};

}  // namespace cqa

#endif  // CQA_DB_REPAIRS_H_
