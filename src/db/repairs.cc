#include "db/repairs.h"

#include "cq/matcher.h"

namespace cqa {

bool RepairEnumerator::ForEach(
    const std::function<bool(const Repair&)>& fn) const {
  const auto& blocks = db_.blocks();
  const auto& facts = db_.facts();
  size_t n = blocks.size();
  std::vector<size_t> choice(n, 0);
  Repair repair(n, nullptr);
  for (;;) {
    for (size_t i = 0; i < n; ++i) {
      repair[i] = &facts[blocks[i].fact_ids[choice[i]]];
    }
    if (!fn(repair)) return false;
    // Odometer increment.
    size_t i = 0;
    for (; i < n; ++i) {
      if (++choice[i] < blocks[i].fact_ids.size()) break;
      choice[i] = 0;
    }
    if (i == n) return true;
  }
}

bool RepairEnumerator::ForEachIndexed(
    const std::function<bool(const FactIndex&, const Repair&)>& fn) const {
  const auto& blocks = db_.blocks();
  const auto& facts = db_.facts();
  size_t n = blocks.size();
  std::vector<size_t> choice(n, 0);
  Repair repair(n, nullptr);
  FactIndex index;
  for (size_t i = 0; i < n; ++i) {
    repair[i] = &facts[blocks[i].fact_ids[0]];
    index.Add(repair[i]);
  }
  for (;;) {
    if (!fn(index, repair)) return false;
    // Odometer increment; every flipped block is one SwapFact (digits
    // that wrap back to 0 included), so the index mutation cost per
    // repair is the number of carried digits — amortised O(1).
    size_t i = 0;
    for (; i < n; ++i) {
      size_t next = choice[i] + 1 < blocks[i].fact_ids.size()
                        ? choice[i] + 1
                        : 0;
      const Fact* new_fact = &facts[blocks[i].fact_ids[next]];
      index.SwapFact(repair[i], new_fact);
      repair[i] = new_fact;
      choice[i] = next;
      if (next != 0) break;
    }
    if (i == n) return true;
  }
}

}  // namespace cqa
