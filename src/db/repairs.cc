#include "db/repairs.h"

namespace cqa {

bool RepairEnumerator::ForEach(
    const std::function<bool(const Repair&)>& fn) const {
  const auto& blocks = db_.blocks();
  const auto& facts = db_.facts();
  size_t n = blocks.size();
  std::vector<size_t> choice(n, 0);
  Repair repair(n, nullptr);
  for (;;) {
    for (size_t i = 0; i < n; ++i) {
      repair[i] = &facts[blocks[i].fact_ids[choice[i]]];
    }
    if (!fn(repair)) return false;
    // Odometer increment.
    size_t i = 0;
    for (; i < n; ++i) {
      if (++choice[i] < blocks[i].fact_ids.size()) break;
      choice[i] = 0;
    }
    if (i == n) return true;
  }
}

}  // namespace cqa
