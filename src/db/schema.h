#ifndef CQA_DB_SCHEMA_H_
#define CQA_DB_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/interner.h"
#include "util/status.h"

/// \file
/// A database schema: a finite set of relation names, each with a fixed
/// signature [n, k] where n is the arity and positions 1..k form the
/// primary key (Section 3).

namespace cqa {

/// Signature [n, k] of a relation name.
struct Signature {
  int arity = 0;
  int key_arity = 0;

  bool all_key() const { return arity == key_arity; }
  bool operator==(const Signature& o) const {
    return arity == o.arity && key_arity == o.key_arity;
  }
};

class Schema {
 public:
  /// Registers `name` with signature [arity, key_arity].
  /// Fails if already registered with a different signature, or if the
  /// signature violates n >= k >= 0.
  Status AddRelation(SymbolId name, int arity, int key_arity);
  Status AddRelation(std::string_view name, int arity, int key_arity);

  /// Signature lookup; nullopt when the relation is unknown.
  std::optional<Signature> Find(SymbolId name) const;

  bool Contains(SymbolId name) const { return Find(name).has_value(); }

  /// All registered relation names, in registration order.
  const std::vector<SymbolId>& relations() const { return order_; }

  /// Merges `other` into this schema; signatures must agree on overlap.
  Status Merge(const Schema& other);

  std::string ToString() const;

 private:
  std::unordered_map<SymbolId, Signature> signatures_;
  std::vector<SymbolId> order_;
};

}  // namespace cqa

#endif  // CQA_DB_SCHEMA_H_
