#ifndef CQA_DB_PARSER_H_
#define CQA_DB_PARSER_H_

#include <string_view>

#include "db/database.h"
#include "util/status.h"

/// \file
/// Text format for uncertain databases:
///
/// ```
/// # Conference planning database (Fig. 1 of the paper).
/// relation C[3,2].          # arity 3, key = first 2 positions
/// relation R[2,1].
/// C(PODS, 2016, Rome).
/// C(PODS, 2016, Paris).
/// C(KDD, 2017, Rome).
/// R(PODS, A).
/// R(KDD, A).
/// R(KDD, B).
/// ```
///
/// Every value in a fact is a constant; quoting ('New York') is only
/// needed when a value contains spaces or punctuation.

namespace cqa {

/// Parses relation declarations and facts.
Result<Database> ParseDatabase(std::string_view text);

}  // namespace cqa

#endif  // CQA_DB_PARSER_H_
