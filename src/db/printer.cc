#include "db/printer.h"

#include <cctype>
#include <sstream>

namespace cqa {

namespace {

/// Quotes a constant when it would not re-lex as a single token.
std::string QuoteIfNeeded(const std::string& s) {
  bool plain = !s.empty();
  for (char c : s) {
    if (!isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      plain = false;
      break;
    }
  }
  if (plain && s != "relation") return s;
  return "'" + s + "'";
}

}  // namespace

std::string FormatDatabase(const Database& db) {
  std::ostringstream os;
  for (SymbolId rel : db.schema().relations()) {
    Signature sig = *db.schema().Find(rel);
    os << "relation " << SymbolName(rel) << "[" << sig.arity << ","
       << sig.key_arity << "].\n";
  }
  for (const Database::Block& block : db.blocks()) {
    for (int fid : block.fact_ids) {
      const Fact& f = db.facts()[fid];
      os << SymbolName(f.relation()) << "(";
      for (int i = 0; i < f.arity(); ++i) {
        if (i > 0) os << ", ";
        os << QuoteIfNeeded(SymbolName(f.values()[i]));
      }
      os << ").\n";
    }
  }
  return os.str();
}

}  // namespace cqa
