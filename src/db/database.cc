#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace cqa {

Status Database::AddFact(const Fact& fact) {
  auto sig = schema_.Find(fact.relation());
  if (!sig.has_value()) {
    CQA_RETURN_NOT_OK(
        schema_.AddRelation(fact.relation(), fact.arity(), fact.key_arity()));
  } else if (sig->arity != fact.arity() ||
             sig->key_arity != fact.key_arity()) {
    return Status::InvalidArgument("fact " + fact.ToString() +
                                   " contradicts signature of relation '" +
                                   SymbolName(fact.relation()) + "'");
  }
  if (Contains(fact)) return Status::OK();

  int fact_id = static_cast<int>(facts_.size());
  facts_.push_back(fact);
  fact_ids_.emplace(fact, fact_id);
  by_relation_[fact.relation()].push_back(fact_id);

  auto block_key = std::make_pair(fact.relation(), fact.KeyValues());
  auto it = block_index_.find(block_key);
  if (it == block_index_.end()) {
    int block_id = static_cast<int>(blocks_.size());
    blocks_.push_back(Block{fact.relation(), block_key.second, {fact_id}});
    block_index_.emplace(std::move(block_key), block_id);
  } else {
    blocks_[it->second].fact_ids.push_back(fact_id);
  }
  return Status::OK();
}

const std::vector<int>& Database::FactsOf(SymbolId relation) const {
  static const std::vector<int> kEmpty;
  auto it = by_relation_.find(relation);
  return it == by_relation_.end() ? kEmpty : it->second;
}

const Database::Block& Database::BlockOf(const Fact& fact) const {
  auto it = block_index_.find(std::make_pair(fact.relation(),
                                             fact.KeyValues()));
  assert(it != block_index_.end());
  return blocks_[it->second];
}

int Database::FactId(const Fact& fact) const {
  auto it = fact_ids_.find(fact);
  return it == fact_ids_.end() ? -1 : it->second;
}

int Database::BlockIdOf(const Fact& fact) const {
  auto it = block_index_.find(std::make_pair(fact.relation(),
                                             fact.KeyValues()));
  return it == block_index_.end() ? -1 : it->second;
}

bool Database::IsConsistent() const {
  for (const Block& b : blocks_) {
    if (b.fact_ids.size() > 1) return false;
  }
  return true;
}

BigInt Database::RepairCount() const {
  BigIntProduct out;
  for (const Block& b : blocks_) out.Multiply(b.fact_ids.size());
  return out.Value();
}

std::vector<SymbolId> Database::ActiveDomain() const {
  std::set<SymbolId> dom;
  for (const Fact& f : facts_) {
    dom.insert(f.values().begin(), f.values().end());
  }
  return std::vector<SymbolId>(dom.begin(), dom.end());
}

Database Database::Restrict(
    const std::unordered_set<SymbolId>& relations) const {
  Database out(schema_);
  for (const Fact& f : facts_) {
    if (relations.count(f.relation())) {
      Status st = out.AddFact(f);
      assert(st.ok());
      (void)st;
    }
  }
  return out;
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(facts_.size());
  for (const Fact& f : facts_) lines.push_back(f.ToString());
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  for (const std::string& l : lines) os << l << "\n";
  return os.str();
}

}  // namespace cqa
