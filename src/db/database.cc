#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace cqa {

Database::Database(const Database& o)
    : schema_(o.schema_),
      facts_(o.facts_),
      fact_ids_(o.fact_ids_),
      rel_slots_(o.rel_slots_),
      blocks_(o.blocks_),
      block_index_(o.block_index_),
      by_relation_(o.by_relation_) {
  ptr_ids_.reserve(facts_.size());
  for (size_t i = 0; i < facts_.size(); ++i) {
    ptr_ids_.emplace(&facts_[i], static_cast<int>(i));
  }
}

Database& Database::operator=(const Database& o) {
  if (this == &o) return *this;
  Database copy(o);
  *this = std::move(copy);
  return *this;
}

Status Database::AddFact(const Fact& fact) {
  auto sig = schema_.Find(fact.relation());
  if (!sig.has_value()) {
    CQA_RETURN_NOT_OK(
        schema_.AddRelation(fact.relation(), fact.arity(), fact.key_arity()));
  } else if (sig->arity != fact.arity() ||
             sig->key_arity != fact.key_arity()) {
    return Status::InvalidArgument("fact " + fact.ToString() +
                                   " contradicts signature of relation '" +
                                   SymbolName(fact.relation()) + "'");
  }
  if (Contains(fact)) return Status::OK();

  int fact_id = static_cast<int>(facts_.size());
  facts_.push_back(fact);
  fact_ids_.emplace(fact, fact_id);
  ptr_ids_.emplace(&facts_.back(), fact_id);
  std::vector<int>& rel_ids = by_relation_[fact.relation()];
  rel_slots_.push_back(static_cast<int>(rel_ids.size()));
  rel_ids.push_back(fact_id);

  auto block_key = std::make_pair(fact.relation(), fact.KeyValues());
  auto it = block_index_.find(block_key);
  if (it == block_index_.end()) {
    int block_id = static_cast<int>(blocks_.size());
    blocks_.push_back(Block{fact.relation(), block_key.second, {fact_id}});
    block_index_.emplace(std::move(block_key), block_id);
  } else {
    blocks_[it->second].fact_ids.push_back(fact_id);
  }
  return Status::OK();
}

namespace {

/// Swap-with-last removal of one occurrence of `value` from `ids`.
void DropId(std::vector<int>* ids, int value) {
  auto it = std::find(ids->begin(), ids->end(), value);
  assert(it != ids->end());
  *it = ids->back();
  ids->pop_back();
}

/// Replaces one occurrence of `from` by `to` in `ids`.
void ReplaceId(std::vector<int>* ids, int from, int to) {
  auto it = std::find(ids->begin(), ids->end(), from);
  assert(it != ids->end());
  *it = to;
}

}  // namespace

Status Database::RemoveFact(const Fact& fact) {
  auto id_it = fact_ids_.find(fact);
  if (id_it == fact_ids_.end()) {
    return Status::NotFound("fact " + fact.ToString() +
                            " is not in the database");
  }
  // `fact` may alias storage this function is about to relocate.
  Fact removed = fact;
  int id = id_it->second;
  int last = static_cast<int>(facts_.size()) - 1;

  // Detach from the block (dropping the block entirely when it empties;
  // blocks compact swap-with-last too, so block ids stay dense).
  auto block_key = std::make_pair(removed.relation(), removed.KeyValues());
  auto block_it = block_index_.find(block_key);
  assert(block_it != block_index_.end());
  int bid = block_it->second;
  DropId(&blocks_[bid].fact_ids, id);
  if (blocks_[bid].fact_ids.empty()) {
    block_index_.erase(block_it);
    int last_bid = static_cast<int>(blocks_.size()) - 1;
    if (bid != last_bid) {
      blocks_[bid] = std::move(blocks_[last_bid]);
      block_index_[std::make_pair(blocks_[bid].relation,
                                  blocks_[bid].key)] = bid;
    }
    blocks_.pop_back();
  }

  {
    // Detach from the per-relation id list through the slot map: O(1),
    // not a scan of the (possibly huge) relation.
    std::vector<int>& rel_ids = by_relation_[removed.relation()];
    int slot = rel_slots_[id];
    int tail_id = rel_ids.back();
    rel_ids[slot] = tail_id;
    rel_ids.pop_back();
    rel_slots_[tail_id] = slot;
  }
  fact_ids_.erase(id_it);
  ptr_ids_.erase(&facts_[id]);

  if (id != last) {
    // Relocate the last fact into the vacated slot and re-point every
    // id-bearing structure from `last` to `id`.
    ptr_ids_.erase(&facts_[last]);
    facts_[id] = std::move(facts_[last]);
    const Fact& moved = facts_[id];
    fact_ids_[moved] = id;
    ptr_ids_[&facts_[id]] = id;
    // The relocated fact keeps its slot in its relation's id list; only
    // the stored id changes (rel_slots_[last] is current even when the
    // detach above moved it).
    int slot = rel_slots_[last];
    by_relation_[moved.relation()][slot] = id;
    rel_slots_[id] = slot;
    auto moved_block = block_index_.find(
        std::make_pair(moved.relation(), moved.KeyValues()));
    assert(moved_block != block_index_.end());
    ReplaceId(&blocks_[moved_block->second].fact_ids, last, id);
  }
  facts_.pop_back();
  rel_slots_.pop_back();
  return Status::OK();
}

const Database::Block* Database::FindBlock(
    SymbolId relation, const std::vector<SymbolId>& key) const {
  auto it = block_index_.find(std::make_pair(relation, key));
  return it == block_index_.end() ? nullptr : &blocks_[it->second];
}

int Database::FactIdOf(const Fact* fact) const {
  auto it = ptr_ids_.find(fact);
  return it == ptr_ids_.end() ? -1 : it->second;
}

const Fact* Database::FactPtr(const Fact& fact) const {
  int id = FactId(fact);
  return id < 0 ? nullptr : &facts_[id];
}

const std::vector<int>& Database::FactsOf(SymbolId relation) const {
  static const std::vector<int> kEmpty;
  auto it = by_relation_.find(relation);
  return it == by_relation_.end() ? kEmpty : it->second;
}

const Database::Block& Database::BlockOf(const Fact& fact) const {
  auto it = block_index_.find(std::make_pair(fact.relation(),
                                             fact.KeyValues()));
  assert(it != block_index_.end());
  return blocks_[it->second];
}

int Database::FactId(const Fact& fact) const {
  auto it = fact_ids_.find(fact);
  return it == fact_ids_.end() ? -1 : it->second;
}

int Database::BlockIdOf(const Fact& fact) const {
  auto it = block_index_.find(std::make_pair(fact.relation(),
                                             fact.KeyValues()));
  return it == block_index_.end() ? -1 : it->second;
}

bool Database::IsConsistent() const {
  for (const Block& b : blocks_) {
    if (b.fact_ids.size() > 1) return false;
  }
  return true;
}

BigInt Database::RepairCount() const {
  BigIntProduct out;
  for (const Block& b : blocks_) out.Multiply(b.fact_ids.size());
  return out.Value();
}

std::vector<SymbolId> Database::ActiveDomain() const {
  std::set<SymbolId> dom;
  for (const Fact& f : facts_) {
    dom.insert(f.values().begin(), f.values().end());
  }
  return std::vector<SymbolId>(dom.begin(), dom.end());
}

Database Database::Restrict(
    const std::unordered_set<SymbolId>& relations) const {
  Database out(schema_);
  for (const Fact& f : facts_) {
    if (relations.count(f.relation())) {
      Status st = out.AddFact(f);
      assert(st.ok());
      (void)st;
    }
  }
  return out;
}

std::string Database::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(facts_.size());
  for (const Fact& f : facts_) lines.push_back(f.ToString());
  std::sort(lines.begin(), lines.end());
  std::ostringstream os;
  for (const std::string& l : lines) os << l << "\n";
  return os.str();
}

}  // namespace cqa
