#ifndef CQA_DB_FACT_H_
#define CQA_DB_FACT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/interner.h"

/// \file
/// A fact is an atom without variables: a relation name applied to
/// constants, with the first `key_arity` positions forming the primary key.
/// Two facts are key-equal when they share relation and key values
/// (Section 3).

namespace cqa {

class Fact {
 public:
  Fact() : relation_(0), key_arity_(0) {}
  Fact(SymbolId relation, std::vector<SymbolId> values, int key_arity)
      : relation_(relation), values_(std::move(values)),
        key_arity_(key_arity) {}

  /// Convenience constructor interning string constants.
  static Fact Make(std::string_view relation,
                   const std::vector<std::string>& values, int key_arity);

  SymbolId relation() const { return relation_; }
  const std::vector<SymbolId>& values() const { return values_; }
  int arity() const { return static_cast<int>(values_.size()); }
  int key_arity() const { return key_arity_; }

  /// The key prefix (positions 0..key_arity-1).
  std::vector<SymbolId> KeyValues() const {
    return std::vector<SymbolId>(values_.begin(),
                                 values_.begin() + key_arity_);
  }

  /// True iff same relation and same key values.
  bool KeyEqual(const Fact& other) const;

  bool operator==(const Fact& o) const {
    return relation_ == o.relation_ && key_arity_ == o.key_arity_ &&
           values_ == o.values_;
  }
  bool operator!=(const Fact& o) const { return !(*this == o); }
  bool operator<(const Fact& o) const;

  /// e.g. "R(a, b | c)" — the bar separates key from non-key positions.
  std::string ToString() const;

 private:
  SymbolId relation_;
  std::vector<SymbolId> values_;
  int key_arity_;
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    size_t h = std::hash<uint32_t>()(f.relation());
    for (SymbolId v : f.values()) {
      h = h * 1000003u + v;
    }
    return h;
  }
};

}  // namespace cqa

#endif  // CQA_DB_FACT_H_
