#ifndef CQA_DB_SAMPLING_H_
#define CQA_DB_SAMPLING_H_

#include "cq/query.h"
#include "db/database.h"
#include "db/repairs.h"
#include "util/rational.h"
#include "util/rng.h"

/// \file
/// Uniform repair sampling. Repairs are exactly the independent
/// one-per-block choices, so a uniformly random repair is one uniform
/// pick per block — the Monte-Carlo workhorse for estimating
/// Pr(q holds in a random repair) when exact methods (safe plan,
/// decomposition counting) are too expensive.

namespace cqa {

/// A uniformly random repair of `db`.
Repair SampleRepair(const Database& db, Rng* rng);

/// Monte-Carlo estimate of the fraction of repairs satisfying q, as the
/// exact fraction hits/samples. `samples` must be positive.
Rational EstimateSatisfactionProbability(const Database& db, const Query& q,
                                         int samples, Rng* rng);

}  // namespace cqa

#endif  // CQA_DB_SAMPLING_H_
