#ifndef CQA_DB_PURIFY_H_
#define CQA_DB_PURIFY_H_

#include "cq/query.h"
#include "db/database.h"

/// \file
/// Purification (Lemma 1): an uncertain database is *purified* relative to
/// q when every fact participates in some embedding of q. Purifying
/// preserves membership in CERTAINTY(q) and runs in polynomial time. The
/// procedure repeatedly finds a fact A with no valuation θ such that
/// A ∈ θ(q) ⊆ db and removes A's entire *block* (exactly as in the paper's
/// proof of Lemma 1).

namespace cqa {

/// Returns the purified version of `db` relative to `q`.
Database Purify(const Database& db, const Query& q);

/// Like Purify, but records one irrelevant witness fact per removed
/// block. Appending those witnesses to any repair of the purified
/// database yields a repair of `db` with the same q-satisfaction
/// (the construction inside Lemma 1's proof) — used to lift falsifying
/// repairs found on purified databases back to the original input.
Database Purify(const Database& db, const Query& q,
                std::vector<Fact>* removed_witnesses);

/// True iff every fact of `db` participates in some embedding of `q`.
bool IsPurified(const Database& db, const Query& q);

}  // namespace cqa

#endif  // CQA_DB_PURIFY_H_
