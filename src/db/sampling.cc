#include "db/sampling.h"

#include <cassert>

#include "cq/matcher.h"

namespace cqa {

Repair SampleRepair(const Database& db, Rng* rng) {
  Repair repair;
  repair.reserve(db.blocks().size());
  for (const Database::Block& block : db.blocks()) {
    int pick = static_cast<int>(rng->Below(block.fact_ids.size()));
    repair.push_back(&db.facts()[block.fact_ids[pick]]);
  }
  return repair;
}

Rational EstimateSatisfactionProbability(const Database& db, const Query& q,
                                         int samples, Rng* rng) {
  assert(samples > 0);
  int hits = 0;
  for (int i = 0; i < samples; ++i) {
    if (Satisfies(SampleRepair(db, rng), q)) ++hits;
  }
  return Rational(BigInt(hits), BigInt(samples));
}

}  // namespace cqa
