#include "db/schema.h"

#include <sstream>

namespace cqa {

Status Schema::AddRelation(SymbolId name, int arity, int key_arity) {
  if (arity < 0 || key_arity < 0 || key_arity > arity) {
    return Status::InvalidArgument("signature must satisfy n >= k >= 0");
  }
  auto it = signatures_.find(name);
  if (it != signatures_.end()) {
    if (it->second.arity != arity || it->second.key_arity != key_arity) {
      return Status::InvalidArgument("relation '" + SymbolName(name) +
                                     "' re-declared with another signature");
    }
    return Status::OK();
  }
  signatures_.emplace(name, Signature{arity, key_arity});
  order_.push_back(name);
  return Status::OK();
}

Status Schema::AddRelation(std::string_view name, int arity, int key_arity) {
  return AddRelation(InternSymbol(name), arity, key_arity);
}

std::optional<Signature> Schema::Find(SymbolId name) const {
  auto it = signatures_.find(name);
  if (it == signatures_.end()) return std::nullopt;
  return it->second;
}

Status Schema::Merge(const Schema& other) {
  for (SymbolId rel : other.order_) {
    Signature sig = *other.Find(rel);
    CQA_RETURN_NOT_OK(AddRelation(rel, sig.arity, sig.key_arity));
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (SymbolId rel : order_) {
    Signature sig = *Find(rel);
    os << SymbolName(rel) << "[" << sig.arity << "," << sig.key_arity << "]\n";
  }
  return os.str();
}

}  // namespace cqa
