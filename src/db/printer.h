#ifndef CQA_DB_PRINTER_H_
#define CQA_DB_PRINTER_H_

#include <string>

#include "db/database.h"

/// \file
/// Round-trip serialization back to the `.db` text format understood by
/// `ParseDatabase`.

namespace cqa {

/// Relation declarations followed by facts grouped by block. The output
/// parses back to an equal database.
std::string FormatDatabase(const Database& db);

}  // namespace cqa

#endif  // CQA_DB_PRINTER_H_
