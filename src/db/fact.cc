#include "db/fact.h"

#include <sstream>

namespace cqa {

Fact Fact::Make(std::string_view relation,
                const std::vector<std::string>& values, int key_arity) {
  std::vector<SymbolId> ids;
  ids.reserve(values.size());
  for (const std::string& v : values) ids.push_back(InternSymbol(v));
  return Fact(InternSymbol(relation), std::move(ids), key_arity);
}

bool Fact::KeyEqual(const Fact& other) const {
  if (relation_ != other.relation_ || key_arity_ != other.key_arity_) {
    return false;
  }
  for (int i = 0; i < key_arity_; ++i) {
    if (values_[i] != other.values_[i]) return false;
  }
  return true;
}

bool Fact::operator<(const Fact& o) const {
  if (relation_ != o.relation_) return relation_ < o.relation_;
  return values_ < o.values_;
}

std::string Fact::ToString() const {
  std::ostringstream os;
  os << SymbolName(relation_) << "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) os << (i == key_arity_ ? " | " : ", ");
    os << SymbolName(values_[i]);
  }
  os << ")";
  return os.str();
}

}  // namespace cqa
