#ifndef CQA_DB_DATABASE_H_
#define CQA_DB_DATABASE_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/fact.h"
#include "db/schema.h"
#include "util/bigint.h"
#include "util/status.h"

/// \file
/// An *uncertain database*: a finite set of facts in which primary keys
/// need not be satisfied. A *block* is a maximal set of key-equal facts;
/// a *repair* picks exactly one fact from each block (Section 3).
///
/// Facts live in a deque, so a stored fact's address is stable under
/// AddFact — this is what lets long-lived `FactIndex`es (and the serving
/// `Session`'s per-worker indexes) reference facts by pointer while the
/// database keeps growing. RemoveFact compacts by moving the *last* fact
/// into the vacated slot, so exactly two addresses are affected per
/// removal (the removed slot, whose contents change, and the popped back
/// slot, which dies); callers maintaining external indexes read
/// `FactPtr`/`LastFact` before the removal and patch accordingly (see
/// serve/session.cc).

namespace cqa {

class Database {
 public:
  Database() = default;
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  // The address->id map must follow the copy's own storage; moves keep
  // the deque's slots (and thus the handed-out fact addresses) alive.
  Database(const Database& o);
  Database& operator=(const Database& o);
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  /// Inserts `fact` (no-op when already present). Registers the relation
  /// in the schema when unknown; fails when the fact contradicts a known
  /// signature. Addresses of previously stored facts are unaffected.
  Status AddFact(const Fact& fact);

  /// Removes `fact`. Fails with NotFound when absent. Compacts fact ids
  /// by relocating the last fact into the removed slot (so ids stay
  /// dense); the removed slot's contents and the last fact's address are
  /// the only addresses invalidated — see the file comment.
  Status RemoveFact(const Fact& fact);

  /// All facts, in insertion order.
  const std::deque<Fact>& facts() const { return facts_; }
  int size() const { return static_cast<int>(facts_.size()); }
  bool empty() const { return facts_.empty(); }

  bool Contains(const Fact& fact) const {
    return fact_ids_.find(fact) != fact_ids_.end();
  }

  /// Index of `fact` in facts(), or -1 when absent. Hash lookup; the hot
  /// paths (SAT encoding, repair counting) use this instead of building
  /// their own fact -> id maps.
  int FactId(const Fact& fact) const;

  /// Id of a fact referenced by its *storage address* (a pointer handed
  /// out by FactPtr or observed through a FactIndex over this database);
  /// -1 for strangers. Pointer-keyed hash lookup — cheaper than hashing
  /// the fact's values on the embedding-enumeration hot paths.
  int FactIdOf(const Fact* fact) const;

  /// Storage address of `fact`, or nullptr when absent. Stable until the
  /// fact is removed (or the last fact is relocated over it).
  const Fact* FactPtr(const Fact& fact) const;

  /// Storage address of facts()[id] (id must be in range).
  const Fact* FactPtrAt(int id) const { return &facts_[id]; }

  /// Address of the highest-id fact — the one RemoveFact relocates.
  /// Null when empty.
  const Fact* LastFact() const {
    return facts_.empty() ? nullptr : &facts_.back();
  }

  /// Index of the block containing `fact` in blocks(), or -1 when absent.
  int BlockIdOf(const Fact& fact) const;

  /// Fact indices (into facts()) of all facts of `relation`.
  const std::vector<int>& FactsOf(SymbolId relation) const;

  /// A block: maximal set of key-equal facts.
  struct Block {
    SymbolId relation;
    std::vector<SymbolId> key;
    std::vector<int> fact_ids;  // indices into facts()
  };

  /// All blocks, in order of first appearance.
  const std::vector<Block>& blocks() const { return blocks_; }

  /// The block containing `fact` (which must be in the database).
  const Block& BlockOf(const Fact& fact) const;

  /// The block with this relation and key, or nullptr when absent. The
  /// delta layer's lookup for ReplaceBlock ops.
  const Block* FindBlock(SymbolId relation,
                         const std::vector<SymbolId>& key) const;

  /// True iff every block is a singleton.
  bool IsConsistent() const;

  /// Number of repairs: the product of block sizes (1 when empty).
  BigInt RepairCount() const;

  /// All constants occurring in the database, sorted.
  std::vector<SymbolId> ActiveDomain() const;

  /// Database restricted to the given relations.
  Database Restrict(const std::unordered_set<SymbolId>& relations) const;

  /// One line per fact, sorted; convenient for tests and goldens.
  std::string ToString() const;

 private:
  struct BlockKeyHash {
    size_t operator()(const std::pair<SymbolId, std::vector<SymbolId>>& k)
        const {
      size_t h = k.first;
      for (SymbolId v : k.second) h = h * 1000003u + v;
      return h;
    }
  };

  Schema schema_;
  std::deque<Fact> facts_;
  std::unordered_map<Fact, int, FactHash> fact_ids_;
  /// Storage address -> id, for FactIdOf. Rebuilt entry-wise alongside
  /// fact_ids_ (deque slots are address-stable until popped).
  std::unordered_map<const Fact*, int> ptr_ids_;
  /// rel_slots_[id] = position of `id` inside by_relation_[relation of
  /// facts_[id]]. Keeps RemoveFact O(block) instead of O(|relation|) —
  /// the serving session's small-delta-over-large-db contract.
  std::vector<int> rel_slots_;
  std::vector<Block> blocks_;
  std::unordered_map<std::pair<SymbolId, std::vector<SymbolId>>, int,
                     BlockKeyHash>
      block_index_;
  std::unordered_map<SymbolId, std::vector<int>> by_relation_;
};

}  // namespace cqa

#endif  // CQA_DB_DATABASE_H_
