#ifndef CQA_DB_DATABASE_H_
#define CQA_DB_DATABASE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/fact.h"
#include "db/schema.h"
#include "util/bigint.h"
#include "util/status.h"

/// \file
/// An *uncertain database*: a finite set of facts in which primary keys
/// need not be satisfied. A *block* is a maximal set of key-equal facts;
/// a *repair* picks exactly one fact from each block (Section 3).

namespace cqa {

class Database {
 public:
  Database() = default;
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  /// Inserts `fact` (no-op when already present). Registers the relation
  /// in the schema when unknown; fails when the fact contradicts a known
  /// signature.
  Status AddFact(const Fact& fact);

  /// All facts, in insertion order.
  const std::vector<Fact>& facts() const { return facts_; }
  int size() const { return static_cast<int>(facts_.size()); }
  bool empty() const { return facts_.empty(); }

  bool Contains(const Fact& fact) const {
    return fact_ids_.find(fact) != fact_ids_.end();
  }

  /// Index of `fact` in facts(), or -1 when absent. Hash lookup; the hot
  /// paths (SAT encoding, repair counting) use this instead of building
  /// their own fact -> id maps.
  int FactId(const Fact& fact) const;

  /// Index of the block containing `fact` in blocks(), or -1 when absent.
  int BlockIdOf(const Fact& fact) const;

  /// Fact indices (into facts()) of all facts of `relation`.
  const std::vector<int>& FactsOf(SymbolId relation) const;

  /// A block: maximal set of key-equal facts.
  struct Block {
    SymbolId relation;
    std::vector<SymbolId> key;
    std::vector<int> fact_ids;  // indices into facts()
  };

  /// All blocks, in order of first appearance.
  const std::vector<Block>& blocks() const { return blocks_; }

  /// The block containing `fact` (which must be in the database).
  const Block& BlockOf(const Fact& fact) const;

  /// True iff every block is a singleton.
  bool IsConsistent() const;

  /// Number of repairs: the product of block sizes (1 when empty).
  BigInt RepairCount() const;

  /// All constants occurring in the database, sorted.
  std::vector<SymbolId> ActiveDomain() const;

  /// Database restricted to the given relations.
  Database Restrict(const std::unordered_set<SymbolId>& relations) const;

  /// One line per fact, sorted; convenient for tests and goldens.
  std::string ToString() const;

 private:
  struct BlockKeyHash {
    size_t operator()(const std::pair<SymbolId, std::vector<SymbolId>>& k)
        const {
      size_t h = k.first;
      for (SymbolId v : k.second) h = h * 1000003u + v;
      return h;
    }
  };

  Schema schema_;
  std::vector<Fact> facts_;
  std::unordered_map<Fact, int, FactHash> fact_ids_;
  std::vector<Block> blocks_;
  std::unordered_map<std::pair<SymbolId, std::vector<SymbolId>>, int,
                     BlockKeyHash>
      block_index_;
  std::unordered_map<SymbolId, std::vector<int>> by_relation_;
};

}  // namespace cqa

#endif  // CQA_DB_DATABASE_H_
