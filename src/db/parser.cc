#include "db/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/strings.h"

namespace cqa {

namespace {

struct Lexer {
  std::string_view text;
  size_t pos = 0;
  int line = 1;

  void SkipSpace() {
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '#') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  char Peek() {
    SkipSpace();
    return pos < text.size() ? text[pos] : '\0';
  }

  bool Consume(char c) {
    if (Peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  /// Identifier, number, or quoted string. Empty on failure.
  std::string Token() {
    SkipSpace();
    if (pos >= text.size()) return "";
    if (text[pos] == '\'') {
      size_t end = text.find('\'', pos + 1);
      if (end == std::string_view::npos) return "";
      std::string out(text.substr(pos + 1, end - pos - 1));
      pos = end + 1;
      return out;
    }
    size_t start = pos;
    while (pos < text.size() &&
           (isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_' || text[pos] == '-')) {
      ++pos;
    }
    return std::string(text.substr(start, pos - start));
  }

  Status Error(const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line) + ": " + msg);
  }
};

}  // namespace

Result<Database> ParseDatabase(std::string_view text) {
  Database db;
  Lexer lex{text};
  while (!lex.AtEnd()) {
    std::string head = lex.Token();
    if (head.empty()) return lex.Error("expected identifier");
    if (head == "relation") {
      std::string name = lex.Token();
      if (name.empty()) return lex.Error("expected relation name");
      if (!lex.Consume('[')) return lex.Error("expected '[' after name");
      std::string arity_s = lex.Token();
      if (!lex.Consume(',')) return lex.Error("expected ',' in signature");
      std::string key_s = lex.Token();
      if (!lex.Consume(']')) return lex.Error("expected ']' in signature");
      if (!lex.Consume('.')) return lex.Error("expected '.' after relation");
      int arity = 0, key = 0;
      for (char c : arity_s) {
        if (!isdigit(static_cast<unsigned char>(c)))
          return lex.Error("bad arity");
        arity = arity * 10 + (c - '0');
      }
      for (char c : key_s) {
        if (!isdigit(static_cast<unsigned char>(c)))
          return lex.Error("bad key arity");
        key = key * 10 + (c - '0');
      }
      Status st = db.mutable_schema()->AddRelation(name, arity, key);
      if (!st.ok()) return lex.Error(st.message());
      continue;
    }
    // A fact: head is a relation name.
    auto sig = db.schema().Find(InternSymbol(head));
    if (!sig.has_value()) {
      return lex.Error("relation '" + head +
                       "' used before its 'relation' declaration");
    }
    if (!lex.Consume('(')) return lex.Error("expected '(' in fact");
    std::vector<SymbolId> values;
    if (!lex.Consume(')')) {
      for (;;) {
        std::string v = lex.Token();
        if (v.empty()) return lex.Error("expected constant");
        values.push_back(InternSymbol(v));
        if (lex.Consume(')')) break;
        if (!lex.Consume(',')) return lex.Error("expected ',' or ')'");
      }
    }
    if (!lex.Consume('.')) return lex.Error("expected '.' after fact");
    if (static_cast<int>(values.size()) != sig->arity) {
      return lex.Error("fact arity mismatch for relation '" + head + "'");
    }
    Status st = db.AddFact(
        Fact(InternSymbol(head), std::move(values), sig->key_arity));
    if (!st.ok()) return lex.Error(st.message());
  }
  return db;
}

}  // namespace cqa
