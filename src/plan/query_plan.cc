#include "plan/query_plan.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cqa {

namespace {

SolverKind KindForComplexity(ComplexityClass complexity) {
  switch (complexity) {
    case ComplexityClass::kFirstOrder:
      return SolverKind::kFoRewriting;
    case ComplexityClass::kPtimeTerminalCycles:
      return SolverKind::kTerminalCycles;
    case ComplexityClass::kPtimeAck:
      return SolverKind::kAck;
    case ComplexityClass::kPtimeCk:
      return SolverKind::kCk;
    case ComplexityClass::kConpComplete:
    case ComplexityClass::kOpenConjecturedPtime:
      return SolverKind::kSat;
  }
  return SolverKind::kSat;
}

/// Freezes the canonical parameters to constants for classification:
/// grounding cannot add attacks (Lemma 5), and the attack graph ignores
/// constant identity, so one classification is valid for every row.
Query FreezeParams(const Query& q, const std::vector<SymbolId>& params) {
  Query frozen = q;
  for (SymbolId v : params) {
    frozen = frozen.Substitute(v, InternSymbol("$param_" + SymbolName(v)));
  }
  return frozen;
}

/// Classifies every key position of every canonical atom against the
/// parameter list (see AtomKeyPattern in the header).
std::vector<AtomKeyPattern> ComputeKeyPatterns(
    const Query& q, const std::vector<SymbolId>& params) {
  std::vector<AtomKeyPattern> patterns;
  patterns.reserve(q.atoms().size());
  for (const Atom& atom : q.atoms()) {
    AtomKeyPattern pattern;
    pattern.relation = atom.relation();
    pattern.key.reserve(atom.key_arity());
    for (int i = 0; i < atom.key_arity(); ++i) {
      const Term& t = atom.terms()[i];
      AtomKeyPattern::Slot slot;
      if (t.is_const()) {
        slot.kind = AtomKeyPattern::Slot::Kind::kConstant;
        slot.constant = t.id();
      } else {
        auto it = std::find(params.begin(), params.end(), t.id());
        if (it != params.end()) {
          slot.kind = AtomKeyPattern::Slot::Kind::kParam;
          slot.param = static_cast<int>(it - params.begin());
        }
      }
      pattern.key.push_back(slot);
    }
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

}  // namespace

Status ValidateFreeVars(const Query& q,
                        const std::vector<SymbolId>& free_vars) {
  VarSet query_vars = q.Vars();
  for (SymbolId v : free_vars) {
    if (query_vars.count(v) == 0) {
      return Status::InvalidArgument(
          "free variable '" + SymbolName(v) +
          "' does not occur in the query " + q.ToString());
    }
  }
  return Status::OK();
}

const FoSolver* QueryPlan::fo_solver() const { return fo_; }

Result<std::shared_ptr<const QueryPlan>> QueryPlan::Compile(const Query& q) {
  return CompileCanonical(Canonicalize(q));
}

Result<std::shared_ptr<const QueryPlan>> QueryPlan::Compile(
    const Query& q, const std::vector<SymbolId>& free_vars) {
  CQA_RETURN_NOT_OK(ValidateFreeVars(q, free_vars));
  return CompileCanonical(Canonicalize(q, free_vars));
}

Result<std::shared_ptr<const QueryPlan>> QueryPlan::CompileCanonical(
    CanonicalQuery canonical) {
  std::shared_ptr<QueryPlan> plan(new QueryPlan());
  plan->canonical_ = std::move(canonical);
  const CanonicalQuery& c = plan->canonical_;
  // Free-variable occurrence is validated against the ORIGINAL query
  // (ValidateFreeVars, run by Compile and by the PlanCache) — the
  // canonical form cannot express it: a duplicated free variable is
  // legal but leaves its later #p_i placeholders without occurrences.
  plan->key_patterns_ = ComputeKeyPatterns(c.query, c.params);

  Result<Classification> cls = ClassifyQuery(
      c.params.empty() ? c.query : FreezeParams(c.query, c.params));
  if (!cls.ok()) {
    // Unsupported fragment (self-join, non-C(k) cyclic query): compile
    // to the sound-and-complete SAT search, but report the failure cause
    // for genuinely malformed queries.
    if (cls.status().code() != StatusCode::kUnsupported) {
      return cls.status();
    }
    plan->complexity_ = ComplexityClass::kOpenConjecturedPtime;
    plan->kind_ = SolverKind::kSat;
    if (c.params.empty()) {
      Result<std::unique_ptr<Solver>> solver =
          SolverRegistry::Global().Create(SolverKind::kSat, c.query);
      if (!solver.ok()) return solver.status();
      plan->solver_ = std::move(solver).value();
    } else {
      plan->row_factory_ = SolverRegistry::Global().Factory(SolverKind::kSat);
    }
    return std::shared_ptr<const QueryPlan>(std::move(plan));
  }

  plan->classification_ = *cls;
  plan->complexity_ = cls->complexity;
  plan->kind_ = KindForComplexity(cls->complexity);

  if (plan->kind_ == SolverKind::kFoRewriting) {
    // The rewriting is compiled over the *unfrozen* canonical query with
    // the parameters kept free, so one formula serves every binding.
    VarSet params(c.params.begin(), c.params.end());
    Result<std::unique_ptr<Solver>> solver = SolverRegistry::Global().Create(
        SolverKind::kFoRewriting, c.query, params);
    if (!solver.ok()) return solver.status();
    plan->solver_ = std::move(solver).value();
    // dynamic_cast, resolved once: the registry allows substituting the
    // kFoRewriting factory with a non-FoSolver implementation; such
    // plans take the generic row path instead of invoking
    // FoSolver::IsCertainRow on a stranger.
    plan->fo_ = dynamic_cast<const FoSolver*>(plan->solver_.get());
    if (plan->fo_ != nullptr) {
      if (c.params.empty()) {
        plan->fo_program_ = plan->fo_->program();
      } else {
        // The solver's own program orders parameters by SymbolId; the
        // plan's rows arrive in canonical positional order, so lower a
        // second program over the same (shared) rewriting with the
        // positional parameter list. Lowering a rewriting cannot fail.
        Result<FoProgram> program =
            FoProgram::Lower(plan->fo_->rewriting(), c.params);
        if (!program.ok()) return program.status();
        plan->fo_program_ =
            std::make_shared<const FoProgram>(std::move(*program));
      }
    }
    if (!c.params.empty()) {
      // Row fallback for substituted (non-FoSolver) implementations.
      plan->row_factory_ =
          SolverRegistry::Global().Factory(SolverKind::kFoRewriting);
    }
  } else if (c.params.empty()) {
    Result<std::unique_ptr<Solver>> solver =
        SolverRegistry::Global().Create(plan->kind_, c.query);
    if (!solver.ok()) return solver.status();
    plan->solver_ = std::move(solver).value();
  } else {
    // Parameterized non-FO plans keep solver_ null: rows are decided by
    // grounding the canonical query (IsCertainRow) through the factory
    // captured here, off the registry lock.
    plan->row_factory_ = SolverRegistry::Global().Factory(plan->kind_);
  }
  return std::shared_ptr<const QueryPlan>(std::move(plan));
}

Result<std::shared_ptr<const QueryPlan>> QueryPlan::CompileForcedSolver(
    const Query& q, SolverKind kind) {
  CanonicalQuery canonical = Canonicalize(q);
  if (!canonical.params.empty()) {
    return Status::InvalidArgument(
        "solver override requires a Boolean query");
  }
  std::shared_ptr<QueryPlan> plan(new QueryPlan());
  plan->canonical_ = std::move(canonical);
  // Tag the key: everything keyed by cache_key() — the Service's
  // prepared-handle dedup AND the session answer cache — must keep a
  // forced plan's results apart from the classifier-chosen plan's.
  plan->canonical_.key += std::string(";solver=") + ToString(kind);
  const CanonicalQuery& c = plan->canonical_;
  plan->key_patterns_ = ComputeKeyPatterns(c.query, c.params);
  Result<Classification> cls = ClassifyQuery(c.query);
  if (cls.ok()) {
    plan->classification_ = *cls;
    plan->complexity_ = cls->complexity;
  } else if (cls.status().code() != StatusCode::kUnsupported) {
    return cls.status();
  } else {
    plan->complexity_ = ComplexityClass::kOpenConjecturedPtime;
  }
  plan->kind_ = kind;
  Result<std::unique_ptr<Solver>> solver =
      SolverRegistry::Global().Create(kind, c.query);
  if (!solver.ok()) return solver.status();
  plan->solver_ = std::move(solver).value();
  plan->fo_ = dynamic_cast<const FoSolver*>(plan->solver_.get());
  if (plan->fo_ != nullptr) plan->fo_program_ = plan->fo_->program();
  return std::shared_ptr<const QueryPlan>(std::move(plan));
}

Result<SolveOutcome> QueryPlan::Solve(const Database& db) const {
  EvalContext ctx(db);
  return Solve(ctx);
}

Result<SolveOutcome> QueryPlan::Solve(EvalContext& ctx) const {
  if (parameterized()) {
    return Status::InvalidArgument(
        "parameterized plan cannot be solved as a Boolean query; use "
        "IsCertainRow");
  }
  Result<SolverCall> call = solver_->Decide(ctx);
  if (!call.ok()) return call.status();
  solver_->Record(*call);
  SolveOutcome out;
  out.certain = call->certain;
  out.complexity = complexity_;
  out.solver = kind_;
  out.sat_vars = call->sat_vars;
  out.sat_clauses = call->sat_clauses;
  out.sat_decisions = call->sat_decisions;
  return out;
}

Result<std::optional<std::vector<Fact>>> QueryPlan::FindFalsifyingRepair(
    const Database& db) const {
  if (parameterized()) {
    return Status::InvalidArgument(
        "parameterized plan has no Boolean falsifying repair");
  }
  return solver_->FindFalsifyingRepair(db);
}

Result<std::vector<char>> QueryPlan::IsCertainRows(
    EvalContext& ctx, const std::vector<std::vector<SymbolId>>& rows,
    const Deadline& deadline) const {
  std::vector<char> out(rows.size(), 0);
  Status s = IsCertainRowSpan(ctx, rows, 0, rows.size(), &out, deadline);
  if (!s.ok()) return s;
  return out;
}

Status QueryPlan::IsCertainRowSpan(
    EvalContext& ctx, const std::vector<std::vector<SymbolId>>& rows,
    size_t begin, size_t end, std::vector<char>* out,
    const Deadline& deadline) const {
  if (!parameterized()) {
    return Status::InvalidArgument("plan has no parameters; use Solve");
  }
  assert(begin <= end && end <= rows.size() && out->size() == rows.size());
  for (size_t i = begin; i < end; ++i) {
    if (rows[i].size() != canonical_.params.size()) {
      return Status::InvalidArgument("row arity does not match plan params");
    }
  }
  if (fo_program_ != nullptr && DefaultFoExecMode() == FoExecMode::kProgram) {
    static const std::vector<SymbolId> kNoAdom;
    const std::vector<SymbolId>& adom =
        fo_program_->needs_adom() ? ctx.evaluator().adom() : kNoAdom;
    Result<std::vector<char>> mask = fo_program_->EvaluateRows(
        ctx.fact_index(), adom, rows, begin, end, deadline);
    if (!mask.ok()) return mask.status();
    std::copy(mask->begin(), mask->end(), out->begin() + begin);
    return Status::OK();
  }
  // Row-at-a-time fallback: non-FO plans, substituted FO
  // implementations, and the interpreter oracle mode. Rows here can be
  // arbitrarily expensive (grounded SAT calls), so the deadline is
  // polled before every row.
  for (size_t i = begin; i < end; ++i) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("deadline expired deciding rows");
    }
    Result<bool> certain = IsCertainRow(ctx, rows[i]);
    if (!certain.ok()) return certain.status();
    (*out)[i] = *certain ? 1 : 0;
  }
  return Status::OK();
}

Result<bool> QueryPlan::IsCertainRow(
    EvalContext& ctx, const std::vector<SymbolId>& row) const {
  if (!parameterized()) {
    return Status::InvalidArgument("plan has no parameters; use Solve");
  }
  if (row.size() != canonical_.params.size()) {
    return Status::InvalidArgument("row arity does not match plan params");
  }
  if (const FoSolver* fo = fo_solver()) {
    Valuation binding;
    for (size_t i = 0; i < row.size(); ++i) {
      binding.Bind(canonical_.params[i], row[i]);
    }
    return fo->IsCertainRow(ctx.evaluator(), binding);
  }
  Query ground = canonical_.query;
  for (size_t i = 0; i < row.size(); ++i) {
    ground = ground.Substitute(canonical_.params[i], row[i]);
  }
  if (row_factory_) {
    // The compiled kind, built through the factory captured at compile
    // time (no registry lock per row); for kSat this is exact and
    // never fails — which also covers the unsupported fragments.
    Result<std::unique_ptr<Solver>> solver = row_factory_(ground, {});
    if (solver.ok()) {
      Result<bool> r = (*solver)->IsCertain(ctx);
      if (r.ok()) return r;
      // Precondition drifted under grounding (substitution can merge
      // atoms); fall through to the full dispatch.
    }
  }
  // Full re-compile of the ground row query — reproduces the complete
  // dispatch, including the SAT fallback for unsupported fragments.
  // Uncached on purpose: row constants would thrash the plan cache.
  Result<std::shared_ptr<const QueryPlan>> fallback = Compile(ground);
  if (!fallback.ok()) return fallback.status();
  Result<SolveOutcome> out = (*fallback)->Solve(ctx);
  if (!out.ok()) return out.status();
  return out->certain;
}

}  // namespace cqa
