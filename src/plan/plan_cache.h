#ifndef CQA_PLAN_PLAN_CACHE_H_
#define CQA_PLAN_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/query_plan.h"

/// \file
/// A bounded, sharded LRU cache of compiled `QueryPlan`s, keyed by
/// the query's canonical form — α-equivalent queries (same up to
/// variable renaming and atom order) share one plan, so classification,
/// attack-graph analysis and the FO rewriting are paid once per
/// equivalence class, not once per call. This is where the dichotomy's
/// compile-time/run-time split turns into serving throughput.
///
/// Compile *failures* are cached too (negative entries): a malformed
/// query — e.g. a free variable that does not occur in the query —
/// stores its Status under the same canonical key and LRU policy, so
/// repeated bad traffic is rejected from the cache instead of
/// re-running validation-plus-compilation every time. When a shard
/// overflows, negative entries are evicted before any compiled plan, so
/// distinct-malformed floods cannot flush hot plans.
///
/// Sharding and the hot-hit path: the canonical hash picks a shard;
/// each shard is guarded by a `shared_mutex`, and a HIT takes only the
/// SHARED side — recency is a per-entry atomic stamped from a global
/// clock, not a splice into an exclusively-locked list — so many
/// workers hammering the same hot α-class (the serving steady state)
/// read concurrently instead of convoying on a shard mutex. Exclusive
/// locking is reserved for inserts and evictions. Compilation runs
/// outside any lock (it can be expensive); when two threads race to
/// compile the same key, the first insert wins and the loser adopts the
/// winner's entry. `Stats::shard_waits` counts hit-path probes that
/// found their shard exclusively held — the contention signal this
/// design exists to keep near zero.

namespace cqa {

class PlanCache {
 public:
  struct Options {
    /// Total plans kept (split across shards, at least one per shard).
    size_t capacity = 1024;
    size_t num_shards = 8;
  };

  PlanCache() : PlanCache(Options()) {}
  explicit PlanCache(const Options& options);

  /// The process-wide cache used by Engine's one-shot entry points.
  static PlanCache& Global();

  /// The plan for `q`, compiling on miss. Compile failures are returned
  /// AND cached (negative entries), so repeated malformed queries skip
  /// recompilation.
  Result<std::shared_ptr<const QueryPlan>> GetOrCompile(const Query& q);

  /// Parameterized variant (the canonical key embeds the parameter
  /// positions, so Boolean and parameterized plans never collide).
  Result<std::shared_ptr<const QueryPlan>> GetOrCompile(
      const Query& q, const std::vector<SymbolId>& free_vars);

  /// Cache probe without compiling (test/diagnostic hook). Does not
  /// touch recency or the hit/miss counters.
  std::shared_ptr<const QueryPlan> Lookup(const Query& q) const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Hits served by a cached compile *failure* (subset of `hits`).
    uint64_t negative_hits = 0;
    /// Hit-path probes that found their shard exclusively locked and
    /// had to block (contention events on the hot path).
    uint64_t shard_waits = 0;
    size_t entries = 0;
    /// Entries holding a Status instead of a plan (subset of `entries`).
    size_t negative_entries = 0;
    size_t capacity = 0;
  };
  /// An atomic snapshot of the counters: every shard is read under its
  /// EXCLUSIVE lock, which excludes in-flight hit paths, so within a
  /// shard hits/misses/negative_hits/entries are mutually consistent
  /// (no torn reads of independently-advancing atomics). This is what
  /// `Service::Stats` surfaces.
  Stats Snapshot() const;

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  /// One cached compile outcome: a plan, or the Status that compilation
  /// failed with (negative entry; `plan` is null exactly then). The
  /// payload is immutable after insert; only `last_use` advances, which
  /// is why hits can run under the shared lock.
  struct Entry {
    std::shared_ptr<const QueryPlan> plan;
    Status error = Status::OK();
    /// Recency stamp from `clock_`; larger = more recently used.
    mutable std::atomic<uint64_t> last_use{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, Entry> by_key;
    /// Atomics because the hit path advances them under the SHARED
    /// lock; Snapshot/Clear read/reset them under the exclusive lock,
    /// which is what makes the snapshot per-shard consistent.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> negative_hits{0};
    std::atomic<uint64_t> waits{0};
  };

  /// `precheck` is a validation failure determined from the ORIGINAL
  /// query (free-variable occurrence): it is cached as the negative
  /// entry instead of compiling.
  Result<std::shared_ptr<const QueryPlan>> GetOrCompileCanonical(
      CanonicalQuery canonical, Status precheck);
  Shard& ShardFor(uint64_t hash) const;
  /// Evicts until `shard` fits its capacity. Caller holds the exclusive
  /// lock. Negative entries go first, then least-recent overall.
  void EvictOverflowLocked(Shard& shard);

  uint64_t NextTick() { return clock_.fetch_add(1, std::memory_order_relaxed) + 1; }

  size_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;
  /// Global recency clock; one relaxed fetch_add per use event.
  std::atomic<uint64_t> clock_{0};
};

}  // namespace cqa

#endif  // CQA_PLAN_PLAN_CACHE_H_
