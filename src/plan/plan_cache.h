#ifndef CQA_PLAN_PLAN_CACHE_H_
#define CQA_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/query_plan.h"

/// \file
/// A bounded, mutex-sharded LRU cache of compiled `QueryPlan`s, keyed by
/// the query's canonical form — α-equivalent queries (same up to
/// variable renaming and atom order) share one plan, so classification,
/// attack-graph analysis and the FO rewriting are paid once per
/// equivalence class, not once per call. This is where the dichotomy's
/// compile-time/run-time split turns into serving throughput.
///
/// Compile *failures* are cached too (negative entries): a malformed
/// query — e.g. a free variable that does not occur in the query —
/// stores its Status under the same canonical key and LRU policy, so
/// repeated bad traffic is rejected from the cache instead of
/// re-running validation-plus-compilation every time. When a shard
/// overflows, negative entries are evicted before any compiled plan, so
/// distinct-malformed floods cannot flush hot plans.
///
/// Sharding: the canonical hash picks a shard; each shard has its own
/// mutex, LRU list and map, so concurrent workers rarely contend.
/// Compilation runs outside the lock (it can be expensive); when two
/// threads race to compile the same key, the first insert wins and the
/// loser adopts the winner's entry.

namespace cqa {

class PlanCache {
 public:
  struct Options {
    /// Total plans kept (split across shards, at least one per shard).
    size_t capacity = 1024;
    size_t num_shards = 8;
  };

  PlanCache() : PlanCache(Options()) {}
  explicit PlanCache(const Options& options);

  /// The process-wide cache used by Engine's one-shot entry points.
  static PlanCache& Global();

  /// The plan for `q`, compiling on miss. Compile failures are returned
  /// AND cached (negative entries), so repeated malformed queries skip
  /// recompilation.
  Result<std::shared_ptr<const QueryPlan>> GetOrCompile(const Query& q);

  /// Parameterized variant (the canonical key embeds the parameter
  /// positions, so Boolean and parameterized plans never collide).
  Result<std::shared_ptr<const QueryPlan>> GetOrCompile(
      const Query& q, const std::vector<SymbolId>& free_vars);

  /// Cache probe without compiling (test/diagnostic hook).
  std::shared_ptr<const QueryPlan> Lookup(const Query& q) const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Hits served by a cached compile *failure* (subset of `hits`).
    uint64_t negative_hits = 0;
    size_t entries = 0;
    /// Entries holding a Status instead of a plan (subset of `entries`).
    size_t negative_entries = 0;
    size_t capacity = 0;
  };
  /// An atomic snapshot of the counters: every field is read under the
  /// shard lock that updates it, so within a shard hits/misses/
  /// negative_hits/entries are mutually consistent (no torn reads of
  /// independently-advancing atomics). This is what `Service::Stats`
  /// surfaces.
  Stats Snapshot() const;

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  /// One cached compile outcome: a plan, or the Status that compilation
  /// failed with (negative entry; `plan` is null exactly then).
  struct Entry {
    std::shared_ptr<const QueryPlan> plan;
    Status error = Status::OK();
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::string, Entry>> lru;
    std::unordered_map<std::string,
                       decltype(lru)::iterator>
        by_key;
    /// Counters live with the data they describe and are only touched
    /// under `mu`, so `Snapshot()` reads a consistent view per shard.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t negative_hits = 0;
  };

  /// `precheck` is a validation failure determined from the ORIGINAL
  /// query (free-variable occurrence): it is cached as the negative
  /// entry instead of compiling.
  Result<std::shared_ptr<const QueryPlan>> GetOrCompileCanonical(
      CanonicalQuery canonical, Status precheck);
  Shard& ShardFor(uint64_t hash) const;

  size_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;
};

}  // namespace cqa

#endif  // CQA_PLAN_PLAN_CACHE_H_
