#ifndef CQA_PLAN_PLAN_CACHE_H_
#define CQA_PLAN_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/query_plan.h"

/// \file
/// A bounded, mutex-sharded LRU cache of compiled `QueryPlan`s, keyed by
/// the query's canonical form — α-equivalent queries (same up to
/// variable renaming and atom order) share one plan, so classification,
/// attack-graph analysis and the FO rewriting are paid once per
/// equivalence class, not once per call. This is where the dichotomy's
/// compile-time/run-time split turns into serving throughput.
///
/// Sharding: the canonical hash picks a shard; each shard has its own
/// mutex, LRU list and map, so concurrent workers rarely contend.
/// Compilation runs outside the lock (it can be expensive); when two
/// threads race to compile the same key, the first insert wins and the
/// loser adopts the winner's plan.

namespace cqa {

class PlanCache {
 public:
  struct Options {
    /// Total plans kept (split across shards, at least one per shard).
    size_t capacity = 1024;
    size_t num_shards = 8;
  };

  PlanCache() : PlanCache(Options()) {}
  explicit PlanCache(const Options& options);

  /// The process-wide cache used by Engine's one-shot entry points.
  static PlanCache& Global();

  /// The plan for `q`, compiling on miss. Compile failures are returned
  /// and never cached.
  Result<std::shared_ptr<const QueryPlan>> GetOrCompile(const Query& q);

  /// Parameterized variant (the canonical key embeds the parameter
  /// positions, so Boolean and parameterized plans never collide).
  Result<std::shared_ptr<const QueryPlan>> GetOrCompile(
      const Query& q, const std::vector<SymbolId>& free_vars);

  /// Cache probe without compiling (test/diagnostic hook).
  std::shared_ptr<const QueryPlan> Lookup(const Query& q) const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };
  Stats stats() const;

  /// Drops all entries and resets the counters.
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<std::string, std::shared_ptr<const QueryPlan>>>
        lru;
    std::unordered_map<std::string,
                       decltype(lru)::iterator>
        by_key;
  };

  Result<std::shared_ptr<const QueryPlan>> GetOrCompileCanonical(
      CanonicalQuery canonical);
  Shard& ShardFor(uint64_t hash) const;

  size_t per_shard_capacity_;
  mutable std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace cqa

#endif  // CQA_PLAN_PLAN_CACHE_H_
