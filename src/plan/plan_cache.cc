#include "plan/plan_cache.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <utility>

namespace cqa {

namespace {

// Shards clamped to the capacity so a small cache is never inflated by
// the one-entry-per-shard minimum; total capacity is then
// options.capacity rounded down to a multiple of the shard count
// (reported exactly by Snapshot().capacity) and never exceeds the request.
size_t EffectiveShards(const PlanCache::Options& options) {
  size_t shards = std::max<size_t>(1, options.num_shards);
  return std::max<size_t>(1, std::min(shards, options.capacity));
}

}  // namespace

PlanCache::PlanCache(const Options& options)
    : per_shard_capacity_(
          std::max<size_t>(1, options.capacity / EffectiveShards(options))),
      shards_(EffectiveShards(options)) {}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

PlanCache::Shard& PlanCache::ShardFor(uint64_t hash) const {
  return shards_[hash % shards_.size()];
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompile(
    const Query& q) {
  return GetOrCompileCanonical(Canonicalize(q), Status::OK());
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompile(
    const Query& q, const std::vector<SymbolId>& free_vars) {
  // Validate against the original query so the error names the caller's
  // variable, then cache the outcome (positive or negative) under the
  // canonical key.
  CanonicalQuery canonical = Canonicalize(q, free_vars);
  if (!free_vars.empty()) {
    // The canonical rendering cannot distinguish parameter lists whose
    // oddities leave no trace in the renamed atoms: {x, x} (legal
    // duplicate projection) and {x, nosuchvar} (malformed) produce the
    // same key. Append an α-invariant argument signature — per
    // position, the index of the variable's first occurrence in the
    // list, with '!' marking variables that do not occur in q — so a
    // negative entry can never be served to a valid request or vice
    // versa.
    VarSet query_vars = q.Vars();
    std::string sig = ";argsig";
    for (size_t i = 0; i < free_vars.size(); ++i) {
      size_t first = i;
      for (size_t j = 0; j < i; ++j) {
        if (free_vars[j] == free_vars[i]) {
          first = j;
          break;
        }
      }
      sig += ":" + std::to_string(first);
      if (query_vars.count(free_vars[i]) == 0) sig += "!";
    }
    canonical.key += sig;
    canonical.hash ^= std::hash<std::string>{}(sig) * 1099511628211ull;
  }
  return GetOrCompileCanonical(std::move(canonical),
                               ValidateFreeVars(q, free_vars));
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompileCanonical(
    CanonicalQuery canonical, Status precheck) {
  Shard& shard = ShardFor(canonical.hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_key.find(canonical.key);
    if (it != shard.by_key.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      if (it->second->second.plan != nullptr) {
        return it->second->second.plan;
      }
      ++shard.negative_hits;
      return it->second->second.error;
    }
    ++shard.misses;
  }
  // Compile outside the lock: plan compilation can run the rewriter.
  // Failures — a precheck rejection or a compile error — become
  // negative entries under the same key and LRU policy, so repeated
  // malformed traffic skips recompilation.
  std::string key = canonical.key;
  Entry entry;
  if (!precheck.ok()) {
    entry.error = std::move(precheck);
  } else {
    Result<std::shared_ptr<const QueryPlan>> compiled =
        QueryPlan::CompileCanonical(std::move(canonical));
    if (compiled.ok()) {
      entry.plan = *compiled;
    } else {
      entry.error = compiled.status();
    }
  }

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) {
    // Lost a compile race; adopt the winner so all callers share one
    // instance (and one set of stats). Don't count the loser's own
    // failure as a served negative hit.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    if (it->second->second.plan != nullptr) return it->second->second.plan;
    return it->second->second.error;
  }
  shard.lru.emplace_front(key, entry);
  shard.by_key.emplace(std::move(key), shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    // Negative entries are evicted before any compiled plan (oldest
    // first), so a stream of DISTINCT malformed queries can never flush
    // hot plans out of the shard — it only cycles the negative entries.
    auto victim = std::prev(shard.lru.end());
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      if (it->second.plan == nullptr) {
        victim = std::prev(it.base());
        break;
      }
    }
    shard.by_key.erase(victim->first);
    shard.lru.erase(victim);
    ++shard.evictions;
  }
  if (entry.plan != nullptr) return entry.plan;
  return entry.error;
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const Query& q) const {
  CanonicalQuery canonical = Canonicalize(q);
  Shard& shard = ShardFor(canonical.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(canonical.key);
  if (it == shard.by_key.end()) return nullptr;
  return it->second->second.plan;  // null for negative entries.
}

PlanCache::Stats PlanCache::Snapshot() const {
  Stats out;
  out.capacity = per_shard_capacity_ * shards_.size();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.negative_hits += shard.negative_hits;
    out.entries += shard.lru.size();
    for (const auto& [key, entry] : shard.lru) {
      (void)key;
      if (entry.plan == nullptr) ++out.negative_entries;
    }
  }
  return out;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.by_key.clear();
    shard.hits = 0;
    shard.misses = 0;
    shard.evictions = 0;
    shard.negative_hits = 0;
  }
}

}  // namespace cqa
