#include "plan/plan_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace cqa {

namespace {

// Shards clamped to the capacity so a small cache is never inflated by
// the one-entry-per-shard minimum; total capacity is then
// options.capacity rounded down to a multiple of the shard count
// (reported exactly by Snapshot().capacity) and never exceeds the request.
size_t EffectiveShards(const PlanCache::Options& options) {
  size_t shards = std::max<size_t>(1, options.num_shards);
  return std::max<size_t>(1, std::min(shards, options.capacity));
}

}  // namespace

PlanCache::PlanCache(const Options& options)
    : per_shard_capacity_(
          std::max<size_t>(1, options.capacity / EffectiveShards(options))),
      shards_(EffectiveShards(options)) {}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

PlanCache::Shard& PlanCache::ShardFor(uint64_t hash) const {
  return shards_[hash % shards_.size()];
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompile(
    const Query& q) {
  return GetOrCompileCanonical(Canonicalize(q), Status::OK());
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompile(
    const Query& q, const std::vector<SymbolId>& free_vars) {
  // Validate against the original query so the error names the caller's
  // variable, then cache the outcome (positive or negative) under the
  // canonical key.
  CanonicalQuery canonical = Canonicalize(q, free_vars);
  if (!free_vars.empty()) {
    // The canonical rendering cannot distinguish parameter lists whose
    // oddities leave no trace in the renamed atoms: {x, x} (legal
    // duplicate projection) and {x, nosuchvar} (malformed) produce the
    // same key. Append an α-invariant argument signature — per
    // position, the index of the variable's first occurrence in the
    // list, with '!' marking variables that do not occur in q — so a
    // negative entry can never be served to a valid request or vice
    // versa.
    VarSet query_vars = q.Vars();
    std::string sig = ";argsig";
    for (size_t i = 0; i < free_vars.size(); ++i) {
      size_t first = i;
      for (size_t j = 0; j < i; ++j) {
        if (free_vars[j] == free_vars[i]) {
          first = j;
          break;
        }
      }
      sig += ":" + std::to_string(first);
      if (query_vars.count(free_vars[i]) == 0) sig += "!";
    }
    canonical.key += sig;
    canonical.hash ^= std::hash<std::string>{}(sig) * 1099511628211ull;
  }
  return GetOrCompileCanonical(std::move(canonical),
                               ValidateFreeVars(q, free_vars));
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompileCanonical(
    CanonicalQuery canonical, Status precheck) {
  Shard& shard = ShardFor(canonical.hash);
  {
    // Hit path: shared lock only. Recency is an atomic stamp, so
    // concurrent hits on one hot α-class never serialize. A failed
    // try_lock_shared means an insert/eviction holds the shard
    // exclusively — count it, then block normally.
    std::shared_lock<std::shared_mutex> lock(shard.mu, std::defer_lock);
    if (!lock.try_lock()) {
      shard.waits.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    auto it = shard.by_key.find(canonical.key);
    if (it != shard.by_key.end()) {
      it->second.last_use.store(NextTick(), std::memory_order_relaxed);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      if (it->second.plan != nullptr) {
        return it->second.plan;
      }
      shard.negative_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second.error;
    }
    shard.misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Compile outside the lock: plan compilation can run the rewriter.
  // Failures — a precheck rejection or a compile error — become
  // negative entries under the same key and LRU policy, so repeated
  // malformed traffic skips recompilation.
  std::string key = canonical.key;
  std::shared_ptr<const QueryPlan> plan;
  Status error = Status::OK();
  if (!precheck.ok()) {
    error = std::move(precheck);
  } else {
    Result<std::shared_ptr<const QueryPlan>> compiled =
        QueryPlan::CompileCanonical(std::move(canonical));
    if (compiled.ok()) {
      plan = *compiled;
    } else {
      error = compiled.status();
    }
  }

  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto [it, inserted] = shard.by_key.try_emplace(std::move(key));
  it->second.last_use.store(NextTick(), std::memory_order_relaxed);
  if (!inserted) {
    // Lost a compile race; adopt the winner so all callers share one
    // instance (and one set of stats). Don't count the loser's own
    // failure as a served negative hit.
    if (it->second.plan != nullptr) return it->second.plan;
    return it->second.error;
  }
  it->second.plan = plan;
  it->second.error = error;
  EvictOverflowLocked(shard);
  // Return the local copies: eviction may have chosen the entry we just
  // inserted (e.g. a fresh negative entry in a shard full of plans).
  if (plan != nullptr) return plan;
  return error;
}

void PlanCache::EvictOverflowLocked(Shard& shard) {
  while (shard.by_key.size() > per_shard_capacity_) {
    // Negative entries are evicted before any compiled plan (least
    // recent first), so a stream of DISTINCT malformed queries can
    // never flush hot plans out of the shard — it only cycles the
    // negative entries. The scan is O(shard size), but eviction only
    // runs on insert overflow — the cold path by construction.
    auto victim = shard.by_key.end();
    bool victim_negative = false;
    uint64_t victim_use = 0;
    for (auto it = shard.by_key.begin(); it != shard.by_key.end(); ++it) {
      bool negative = it->second.plan == nullptr;
      uint64_t use = it->second.last_use.load(std::memory_order_relaxed);
      if (victim == shard.by_key.end() ||
          (negative && !victim_negative) ||
          (negative == victim_negative && use < victim_use)) {
        victim = it;
        victim_negative = negative;
        victim_use = use;
      }
    }
    shard.by_key.erase(victim);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const Query& q) const {
  CanonicalQuery canonical = Canonicalize(q);
  Shard& shard = ShardFor(canonical.hash);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.by_key.find(canonical.key);
  if (it == shard.by_key.end()) return nullptr;
  return it->second.plan;  // null for negative entries.
}

PlanCache::Stats PlanCache::Snapshot() const {
  Stats out;
  out.capacity = per_shard_capacity_ * shards_.size();
  for (const Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    out.hits += shard.hits.load(std::memory_order_relaxed);
    out.misses += shard.misses.load(std::memory_order_relaxed);
    out.evictions += shard.evictions.load(std::memory_order_relaxed);
    out.negative_hits += shard.negative_hits.load(std::memory_order_relaxed);
    out.shard_waits += shard.waits.load(std::memory_order_relaxed);
    out.entries += shard.by_key.size();
    for (const auto& [key, entry] : shard.by_key) {
      (void)key;
      if (entry.plan == nullptr) ++out.negative_entries;
    }
  }
  return out;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.by_key.clear();
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.evictions.store(0, std::memory_order_relaxed);
    shard.negative_hits.store(0, std::memory_order_relaxed);
    shard.waits.store(0, std::memory_order_relaxed);
  }
}

}  // namespace cqa
