#include "plan/plan_cache.h"

#include <algorithm>
#include <utility>

namespace cqa {

namespace {

// Shards clamped to the capacity so a small cache is never inflated by
// the one-entry-per-shard minimum; total capacity is then
// options.capacity rounded down to a multiple of the shard count
// (reported exactly by stats().capacity) and never exceeds the request.
size_t EffectiveShards(const PlanCache::Options& options) {
  size_t shards = std::max<size_t>(1, options.num_shards);
  return std::max<size_t>(1, std::min(shards, options.capacity));
}

}  // namespace

PlanCache::PlanCache(const Options& options)
    : per_shard_capacity_(
          std::max<size_t>(1, options.capacity / EffectiveShards(options))),
      shards_(EffectiveShards(options)) {}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

PlanCache::Shard& PlanCache::ShardFor(uint64_t hash) const {
  return shards_[hash % shards_.size()];
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompile(
    const Query& q) {
  return GetOrCompileCanonical(Canonicalize(q));
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompile(
    const Query& q, const std::vector<SymbolId>& free_vars) {
  return GetOrCompileCanonical(Canonicalize(q, free_vars));
}

Result<std::shared_ptr<const QueryPlan>> PlanCache::GetOrCompileCanonical(
    CanonicalQuery canonical) {
  Shard& shard = ShardFor(canonical.hash);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_key.find(canonical.key);
    if (it != shard.by_key.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Compile outside the lock: plan compilation can run the rewriter.
  std::string key = canonical.key;
  Result<std::shared_ptr<const QueryPlan>> compiled =
      QueryPlan::CompileCanonical(std::move(canonical));
  if (!compiled.ok()) return compiled.status();

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) {
    // Lost a compile race; adopt the winner so all callers share one
    // instance (and one set of stats).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }
  shard.lru.emplace_front(key, *compiled);
  shard.by_key.emplace(std::move(key), shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.by_key.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return *compiled;
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const Query& q) const {
  CanonicalQuery canonical = Canonicalize(q);
  Shard& shard = ShardFor(canonical.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.by_key.find(canonical.key);
  if (it == shard.by_key.end()) return nullptr;
  return it->second->second;
}

PlanCache::Stats PlanCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.capacity = per_shard_capacity_ * shards_.size();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.entries += shard.lru.size();
  }
  return out;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.by_key.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace cqa
