#ifndef CQA_PLAN_QUERY_PLAN_H_
#define CQA_PLAN_QUERY_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "cq/canonicalize.h"
#include "cq/query.h"
#include "db/database.h"
#include "solvers/fo_solver.h"
#include "solvers/solver.h"
#include "util/deadline.h"
#include "util/status.h"

/// \file
/// The compiled form of a query. Wijsen's dichotomy makes CERTAINTY(q) a
/// *compile-time* question: classification, attack-graph analysis and
/// (on the FO side) the certain rewriting depend only on q, never on the
/// database. `QueryPlan::Compile` runs all of it once and bundles the
/// results into an immutable, thread-shareable object; solving a
/// database against a plan is then pure evaluation. Plans are produced
/// from the *canonical* form of the query (see cq/canonicalize.h), so
/// one plan serves every α-equivalent query — which is what the
/// `PlanCache` exploits.

namespace cqa {

/// Compile-time key-position metadata of one atom of the canonical
/// query: every key position is a constant, a parameter (a free
/// variable, identified by its positional index in the plan's parameter
/// list), or an existential wildcard.
///
/// This is the plan's handle for *key-prefix pruning* on the database
/// side. A block (relation + key) can participate in an embedding of
/// q[r] only if its key matches some atom's pattern under the row r:
/// constant slots equal the block's key value, parameter slots equal
/// r[param]. Since repairs factor into independent per-block choices,
/// CERTAINTY(q[r]) is invariant under any change to a block matching no
/// pattern — which is what lets the serving session re-decide only the
/// answer rows whose patterns a delta touched, and enumerate candidate
/// rows seeded with the touched key values (see serve/session.cc).
struct AtomKeyPattern {
  struct Slot {
    enum class Kind : uint8_t { kConstant, kParam, kWildcard };
    Kind kind = Kind::kWildcard;
    /// The constant (kConstant) or parameter index (kParam).
    SymbolId constant = 0;
    int param = -1;
  };
  SymbolId relation = 0;
  /// One entry per key position of the atom.
  std::vector<Slot> key;
};

/// The outcome of one certainty decision.
struct SolveOutcome {
  bool certain = false;
  ComplexityClass complexity = ComplexityClass::kFirstOrder;
  /// Which solver produced the answer.
  SolverKind solver = SolverKind::kSat;
  /// Per-call SAT statistics (zero off the SAT path) — surfaced here
  /// instead of through solver globals.
  int64_t sat_vars = 0;
  int64_t sat_clauses = 0;
  int64_t sat_decisions = 0;
};

/// OK iff every variable of `free_vars` occurs in `q` (duplicates are
/// allowed: a repeated free variable just projects the same column
/// twice); InvalidArgument naming the offending variable otherwise. A
/// free variable that never occurs could not be bound by any candidate
/// embedding, so the request is malformed. Shared by the plan compiler,
/// the plan cache (which negatively caches the Status) and the
/// possible-answer enumeration.
Status ValidateFreeVars(const Query& q,
                        const std::vector<SymbolId>& free_vars);

class QueryPlan {
 public:
  /// Compiles a Boolean query: canonicalize, classify (Theorems 1-4),
  /// build the chosen solver (including the FO rewriting when the attack
  /// graph is acyclic). Fails only on malformed queries; the unsupported
  /// fragments (self-joins, non-C(k) cyclic queries) compile to the
  /// sound-and-complete SAT solver.
  static Result<std::shared_ptr<const QueryPlan>> Compile(const Query& q);

  /// Parameterized compile for non-Boolean queries: `free_vars` are kept
  /// free and bound per row at evaluation time (ValidateFreeVars applies).
  /// Classification freezes the parameters (grounding cannot add
  /// attacks, Lemma 5), and on the FO path one parameterized rewriting
  /// serves every binding.
  static Result<std::shared_ptr<const QueryPlan>> Compile(
      const Query& q, const std::vector<SymbolId>& free_vars);

  /// Compile from an already canonicalized query (the PlanCache path —
  /// avoids canonicalizing twice).
  static Result<std::shared_ptr<const QueryPlan>> CompileCanonical(
      CanonicalQuery canonical);

  /// Compiles a Boolean query with the decision procedure FORCED to
  /// `kind` instead of the classifier's choice. Classification still
  /// runs (the plan keeps its diagnostics and true complexity); only
  /// the solver is overridden. This is how `Service` prepared handles
  /// reach every registered solver — e.g. pinning `SolverKind::kOracle`
  /// to cross-check production answers against repair enumeration, or
  /// `kSat` to exercise the fallback on a tractable query. Fails when
  /// `kind` cannot decide the query (e.g. forcing `kFoRewriting` onto a
  /// non-FO query) or when the query is parameterized. The plan's
  /// `cache_key()` carries a `;solver=` tag so every cache keyed by it
  /// (the Service's handle dedup, a session's answer cache) keeps
  /// forced results apart from the classifier-chosen plan's; forced
  /// plans are still never stored in a `PlanCache`.
  static Result<std::shared_ptr<const QueryPlan>> CompileForcedSolver(
      const Query& q, SolverKind kind);

  // ------------------------------------------------- compile-time facts
  const CanonicalQuery& canonical() const { return canonical_; }
  const std::string& cache_key() const { return canonical_.key; }
  ComplexityClass complexity() const { return complexity_; }
  SolverKind solver_kind() const { return kind_; }
  bool parameterized() const { return !canonical_.params.empty(); }
  /// Attack-graph diagnostics; nullopt for the unsupported fragments
  /// (which fall back to SAT without a classification).
  const std::optional<Classification>& classification() const {
    return classification_;
  }
  /// The compiled solver instance. Null only for parameterized non-FO
  /// plans (their rows are decided by grounding, see IsCertainRow).
  const Solver* solver() const { return solver_.get(); }
  /// The parameterized FO rewriting, when this is an FO plan built from
  /// the stock FoSolver (null when a substituted registry factory
  /// produced something else — those plans use the generic row path).
  const FoSolver* fo_solver() const;

  /// The compiled set-at-a-time FO program (parameters positionally
  /// aligned with canonical().params). Null for non-FO / substituted
  /// plans. This is what execution backends lower to SQL (fo/sql_lower.h)
  /// — a null program means the plan cannot be pushed down natively.
  const std::shared_ptr<const FoProgram>& fo_program() const {
    return fo_program_;
  }

  /// Per-atom key-position patterns of the canonical query (parameter
  /// indexes positionally aligned with the plan's parameters / the
  /// caller's free_vars). Computed for every plan, including the
  /// SAT-fallback fragments.
  const std::vector<AtomKeyPattern>& key_patterns() const {
    return key_patterns_;
  }

  // ------------------------------------------------------- evaluation
  /// Decides db ∈ CERTAINTY(q) for a Boolean plan. Thread-safe: any
  /// number of threads may Solve one plan concurrently (each with its
  /// own EvalContext).
  Result<SolveOutcome> Solve(const Database& db) const;
  Result<SolveOutcome> Solve(EvalContext& ctx) const;

  /// A repair of db falsifying q, or nullopt when certain. Uses the
  /// Theorem 4 witness extraction on AC(k) plans and the SAT search
  /// otherwise.
  Result<std::optional<std::vector<Fact>>> FindFalsifyingRepair(
      const Database& db) const;

  /// Decides one row of a parameterized plan: `row` binds the canonical
  /// parameters positionally. FO plans evaluate the shared rewriting
  /// under the binding via the tree interpreter — this is the
  /// row-at-a-time oracle; production row traffic goes through
  /// IsCertainRows. Non-FO plans ground the canonical query and run the
  /// compiled dispatch (falling back to a fresh compile when grounding
  /// drifts out of the specialized solver's precondition).
  Result<bool> IsCertainRow(EvalContext& ctx,
                            const std::vector<SymbolId>& row) const;

  /// Batch row decision, positionally aligned with `rows`. FO plans run
  /// the compiled set-at-a-time program (fo/program.h): every row is
  /// decided in ONE pass over the context's FactIndex, with indexed
  /// probes instead of per-row relation scans. Non-FO plans (and FO
  /// plans under FoExecMode::kInterpreter) fall back to IsCertainRow
  /// per row.
  Result<std::vector<char>> IsCertainRows(
      EvalContext& ctx, const std::vector<std::vector<SymbolId>>& rows,
      const Deadline& deadline = Deadline()) const;

  /// Span variant for data-parallel execution: decides rows[begin, end)
  /// and writes the verdicts into (*out)[begin, end) — `out` must
  /// already have size rows.size(). Rows are decided independently, so
  /// workers covering a batch with disjoint spans (each with its OWN
  /// EvalContext) produce exactly the vector IsCertainRows returns,
  /// without any cross-worker coordination on the output. Entries
  /// outside the span are never touched. `deadline` is polled
  /// cooperatively (per row on the fallback path, per batch checkpoint
  /// on the FO-program path); expiry abandons the span with
  /// kDeadlineExceeded and leaves its output entries unspecified.
  Status IsCertainRowSpan(EvalContext& ctx,
                          const std::vector<std::vector<SymbolId>>& rows,
                          size_t begin, size_t end, std::vector<char>* out,
                          const Deadline& deadline = Deadline()) const;

 private:
  QueryPlan() = default;

  CanonicalQuery canonical_;
  std::vector<AtomKeyPattern> key_patterns_;
  std::optional<Classification> classification_;
  ComplexityClass complexity_ = ComplexityClass::kOpenConjecturedPtime;
  SolverKind kind_ = SolverKind::kSat;
  std::unique_ptr<const Solver> solver_;
  /// The FoSolver view of solver_, resolved once at compile time (null
  /// for non-FO plans and for substituted FO implementations).
  const FoSolver* fo_ = nullptr;
  /// The set-at-a-time program, cached alongside the rewriting: for
  /// Boolean FO plans the solver's own program, for parameterized FO
  /// plans a lowering whose parameters follow the plan's positional
  /// order (canonical_.params). Null for non-FO / substituted plans.
  std::shared_ptr<const FoProgram> fo_program_;
  /// Captured at compile time for parameterized non-FO plans: builds
  /// the per-row solver without touching the registry mutex per row.
  SolverFactory row_factory_;
};

}  // namespace cqa

#endif  // CQA_PLAN_QUERY_PLAN_H_
